package sched

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"proteus/internal/bidbrain"
	"proteus/internal/core"
	"proteus/internal/market"
	"proteus/internal/obs"
	"proteus/internal/sim"
	"proteus/internal/trace"
)

// testBrain trains a brain on a synthetic history window, mirroring the
// paper's train/evaluate split.
func testBrain(t testing.TB, seed int64) *bidbrain.Brain {
	t.Helper()
	prices := market.CatalogPrices(market.DefaultCatalog())
	hist := trace.GenerateSet("train", 30*24*time.Hour, prices, seed+1000)
	betas := make(map[string]*trace.BetaTable)
	for name := range prices {
		tr, _ := hist.Get(name)
		betas[name] = trace.BuildBetaTable(tr, trace.DefaultDeltas(), 300, seed)
	}
	brain, err := bidbrain.New(bidbrain.DefaultParams(), betas, nil)
	if err != nil {
		t.Fatal(err)
	}
	return brain
}

// testHarness builds an evaluation market disjoint from the brain's
// training window.
func testHarness(t testing.TB, seed int64) (*sim.Engine, *market.Market, *bidbrain.Brain) {
	t.Helper()
	brain := testBrain(t, seed)
	eval := trace.GenerateSet("eval", 14*24*time.Hour, market.CatalogPrices(market.DefaultCatalog()), seed)
	eng := sim.NewEngine()
	mkt, err := market.New(eng, market.Config{
		Catalog: market.DefaultCatalog(),
		Traces:  eval,
		Warning: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, mkt, brain
}

// smallSpec sizes a job worth one hour on 256 transient cores.
func smallSpec() core.JobSpec {
	p := bidbrain.DefaultParams()
	return core.JobSpec{
		TargetWork:    p.Phi * 256,
		Params:        p,
		ReliableType:  "c4.xlarge",
		ReliableCount: 3,
		MaxSpotCores:  256,
		ChunkCores:    128,
	}
}

func testConfig(brain *bidbrain.Brain) Config {
	return Config{
		Brain:         brain,
		ReliableType:  "c4.xlarge",
		ReliableCount: 4,
		MaxSpotCores:  512,
		ChunkCores:    128,
	}
}

// eightJobs is the acceptance workload: staggered arrivals, mixed
// priorities, one generous deadline.
func eightJobs() []Job {
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{
			ID:       i,
			Name:     "job",
			Spec:     smallSpec(),
			Arrival:  time.Duration(i) * 10 * time.Minute,
			Priority: i % 3,
		}
	}
	jobs[7].Deadline = 48 * time.Hour
	return jobs
}

func runJobs(t testing.TB, seed int64, jobs []Job, mutate func(*Config)) *Result {
	t.Helper()
	eng, mkt, brain := testHarness(t, seed)
	cfg := testConfig(brain)
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(eng, mkt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSchedulerSingleJobCompletes(t *testing.T) {
	res := runJobs(t, 1, []Job{{ID: 0, Name: "solo", Spec: smallSpec()}}, nil)
	jr := res.Jobs[0]
	if !jr.Completed || jr.State != Done {
		t.Fatalf("job did not complete: %+v", jr)
	}
	if res.TotalCost <= 0 {
		t.Fatalf("total cost %.4f, want positive", res.TotalCost)
	}
	if jr.Cost <= 0 || jr.Cost > res.TotalCost {
		t.Fatalf("job cost %.4f outside (0, %.4f]", jr.Cost, res.TotalCost)
	}
	if jr.Work < smallSpec().TargetWork*(1-1e-9) {
		t.Fatalf("work %.2f under target %.2f", jr.Work, smallSpec().TargetWork)
	}
}

// TestSchedulerConcurrentCheaperThanSerial is the acceptance criterion:
// eight jobs on one shared footprint must bill strictly fewer dollars
// concurrently than serially back-to-back — the shared reliable anchor
// is paid for a shorter makespan and footprint handoff wastes fewer
// paid hours.
func TestSchedulerConcurrentCheaperThanSerial(t *testing.T) {
	conc := runJobs(t, 1, eightJobs(), nil)
	serial := runJobs(t, 1, eightJobs(), func(c *Config) { c.MaxConcurrent = 1 })
	for _, res := range []*Result{conc, serial} {
		if len(res.Jobs) != 8 {
			t.Fatalf("got %d job results", len(res.Jobs))
		}
		for _, jr := range res.Jobs {
			if !jr.Completed {
				t.Fatalf("job %d did not complete (state %v)", jr.Job.ID, jr.State)
			}
		}
	}
	t.Logf("concurrent $%.2f makespan %v | serial $%.2f makespan %v",
		conc.TotalCost, conc.Makespan, serial.TotalCost, serial.Makespan)
	if conc.TotalCost >= serial.TotalCost {
		t.Fatalf("concurrent $%.2f not under serial $%.2f", conc.TotalCost, serial.TotalCost)
	}
	if conc.Makespan >= serial.Makespan {
		t.Fatalf("concurrent makespan %v not under serial %v", conc.Makespan, serial.Makespan)
	}
	if len(conc.Timeline) == 0 {
		t.Fatal("empty utilization timeline")
	}
}

// TestSchedulerDeterminism: same seed ⇒ identical schedule and billed
// dollars, bit for bit.
func TestSchedulerDeterminism(t *testing.T) {
	a := runJobs(t, 3, eightJobs(), nil)
	b := runJobs(t, 3, eightJobs(), nil)
	if a.TotalCost != b.TotalCost {
		t.Fatalf("total cost diverged: %.10f vs %.10f", a.TotalCost, b.TotalCost)
	}
	if a.Makespan != b.Makespan || a.Rebalances != b.Rebalances {
		t.Fatalf("schedule diverged: makespan %v/%v rebalances %d/%d",
			a.Makespan, b.Makespan, a.Rebalances, b.Rebalances)
	}
	for i := range a.Jobs {
		ja, jb := a.Jobs[i], b.Jobs[i]
		if ja.Finished != jb.Finished || ja.Cost != jb.Cost || ja.Evictions != jb.Evictions {
			t.Fatalf("job %d diverged: %+v vs %+v", ja.Job.ID, ja, jb)
		}
	}
}

// flatMarket has one constant price and a short horizon.
func flatMarket(t *testing.T, horizon time.Duration) (*sim.Engine, *market.Market) {
	t.Helper()
	catalog := market.DefaultCatalog()
	set := trace.NewSet("flat")
	for _, tp := range catalog {
		set.Add(&trace.Trace{InstanceType: tp.Name, Zone: "flat", Points: []trace.Point{
			{At: 0, Price: tp.OnDemand * 0.25},
			{At: horizon, Price: tp.OnDemand * 0.25},
		}})
	}
	eng := sim.NewEngine()
	mkt, err := market.New(eng, market.Config{Catalog: catalog, Traces: set, Warning: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	return eng, mkt
}

// TestSchedulerZeroCapacityMarket: when no grantable spot capacity
// exists at the job's granularity, the run must terminate at the market
// horizon with the jobs reported incomplete — not hang on the decision
// ticker.
func TestSchedulerZeroCapacityMarket(t *testing.T) {
	eng, mkt := flatMarket(t, 6*time.Hour)
	brain := testBrain(t, 1)
	spec := smallSpec()
	spec.MaxSpotCores = 2 // below the smallest instance's core count
	spec.ChunkCores = 2
	s, err := New(eng, mkt, Config{
		Brain:         brain,
		ReliableType:  "c4.xlarge",
		ReliableCount: 1,
		MaxSpotCores:  2,
		ChunkCores:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(Job{ID: 0, Name: "starved", Spec: spec}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	jr := res.Jobs[0]
	if jr.Completed || jr.State != Running {
		t.Fatalf("starved job should end incomplete and running, got %+v", jr)
	}
	if res.Usage.SpotHours != 0 {
		t.Fatalf("spot hours %.2f on a zero-capacity market", res.Usage.SpotHours)
	}
	if res.TotalCost <= 0 {
		t.Fatal("reliable anchor should still have been billed")
	}
}

// stormMarket spikes every type above on-demand simultaneously, so the
// whole shared footprint is evicted at once.
func stormMarket(t *testing.T, interval, spikeLen time.Duration) (*sim.Engine, *market.Market) {
	t.Helper()
	catalog := market.DefaultCatalog()
	set := trace.NewSet("storm")
	for _, tp := range catalog {
		base := tp.OnDemand * 0.25
		pts := []trace.Point{{At: 0, Price: base}}
		for at := interval / 2; at < 100*time.Hour; at += interval {
			pts = append(pts, trace.Point{At: at, Price: tp.OnDemand * 3})
			pts = append(pts, trace.Point{At: at + spikeLen, Price: base})
		}
		set.Add(&trace.Trace{InstanceType: tp.Name, Zone: "storm", Points: pts})
	}
	eng := sim.NewEngine()
	mkt, err := market.New(eng, market.Config{Catalog: catalog, Traces: set, Warning: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	return eng, mkt
}

// TestSchedulerSurvivesMassEviction: all jobs lose their whole footprint
// simultaneously and still complete, with the refunded hours showing up
// as free compute.
func TestSchedulerSurvivesMassEviction(t *testing.T) {
	eng, mkt := stormMarket(t, 100*time.Minute, 4*time.Minute)
	brain := testBrain(t, 1)
	cfg := testConfig(brain)
	s, err := New(eng, mkt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec()
	spec.TargetWork *= 2 // span several storm cycles
	for i := 0; i < 3; i++ {
		if err := s.Submit(Job{ID: i, Name: "storm", Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	evictions := 0
	for _, jr := range res.Jobs {
		if !jr.Completed {
			t.Fatalf("job %d did not survive the storm (state %v)", jr.Job.ID, jr.State)
		}
		evictions += jr.Evictions
	}
	if evictions == 0 {
		t.Fatal("storm produced no evictions")
	}
	if res.Usage.FreeHours == 0 {
		t.Fatal("mass eviction should have refunded hours as free compute")
	}
}

// TestJobTraceTreeCoverage: a stormy run yields, for every job, exactly
// one rooted causal tree whose parent links all resolve and whose events
// cover the full lifecycle — submit through lease, eviction warning,
// refund, and completion.
func TestJobTraceTreeCoverage(t *testing.T) {
	eng, mkt := stormMarket(t, 100*time.Minute, 4*time.Minute)
	brain := testBrain(t, 1)
	o := obs.NewObserver(eng.Now)
	cfg := testConfig(brain)
	cfg.Observer = o
	cfg.TraceSeed = 42
	s, err := New(eng, mkt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec()
	spec.TargetWork *= 2 // span several storm cycles
	for i := 0; i < 3; i++ {
		if err := s.Submit(Job{ID: i, Name: "storm", Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}

	evictions := 0
	for i := 0; i < 3; i++ {
		st, ok := s.Status(i)
		if !ok {
			t.Fatalf("job %d missing", i)
		}
		if st.TraceID != obs.NewTraceID(42, uint64(i)) {
			t.Fatalf("job %d trace ID %x not derived from the config seed", i, st.TraceID)
		}
		spans := o.Trace().TraceSpans(st.TraceID)
		roots := obs.BuildTree(spans)
		if len(roots) != 1 {
			t.Fatalf("job %d: %d roots, want 1 — a parent link is broken", i, len(roots))
		}
		root := roots[0]
		if root.Component != "sched" || root.Name != "job" {
			t.Fatalf("job %d root = %s/%s", i, root.Component, root.Name)
		}
		visited := 0
		names := map[string]int{}
		obs.WalkTree(roots, func(n *obs.TraceNode, depth int) {
			visited++
			names[n.Name]++
			if n.Open {
				t.Fatalf("job %d: span %s/%s still open after settle", i, n.Component, n.Name)
			}
		})
		if visited != len(spans) {
			t.Fatalf("job %d: tree covers %d of %d spans", i, visited, len(spans))
		}
		for _, want := range []string{"submit", "queued", "admitted", "running", "lease", "bid", "done"} {
			if names[want] == 0 {
				t.Fatalf("job %d: no %q span in tree (have %v)", i, want, names)
			}
		}
		if st.Evictions > 0 {
			for _, want := range []string{"eviction-warning", "refund"} {
				if names[want] == 0 {
					t.Fatalf("job %d evicted %d times but tree lacks %q spans (have %v)",
						i, st.Evictions, want, names)
				}
			}
		}
		evictions += st.Evictions
	}
	if evictions == 0 {
		t.Fatal("storm produced no evictions; the eviction branches went untested")
	}
	if o.Trace().Dropped() != 0 {
		t.Fatalf("%d spans dropped during the run", o.Trace().Dropped())
	}
}

// TestSchedulerLateArrivalExpires: a deadline job arriving after its
// deadline is rejected without running and costs nothing.
func TestSchedulerLateArrivalExpires(t *testing.T) {
	jobs := []Job{
		{ID: 0, Name: "ok", Spec: smallSpec()},
		{ID: 1, Name: "late", Spec: smallSpec(), Arrival: 3 * time.Hour, Deadline: 2 * time.Hour},
	}
	res := runJobs(t, 1, jobs, nil)
	if !res.Jobs[0].Completed {
		t.Fatal("job 0 should complete")
	}
	late := res.Jobs[1]
	if late.State != Expired || late.Completed {
		t.Fatalf("late job should expire, got %+v", late)
	}
	if late.Cost != 0 || late.Work != 0 {
		t.Fatalf("expired job billed cost %.4f work %.2f", late.Cost, late.Work)
	}
	if late.MetDeadline {
		t.Fatal("expired job cannot meet its deadline")
	}
}

// TestSchedulerExportsMetrics: a run with an observer populates every
// sched_* family the DESIGN.md table promises.
func TestSchedulerExportsMetrics(t *testing.T) {
	eng, mkt, brain := testHarness(t, 1)
	o := obs.NewObserver(eng.Now)
	cfg := testConfig(brain)
	cfg.Observer = o
	s, err := New(eng, mkt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range eightJobs()[:3] {
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.Reg().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, family := range []string{
		"proteus_sched_jobs_total",
		"proteus_sched_queue_depth",
		"proteus_sched_lease_seconds",
		"proteus_sched_rebalances_total",
	} {
		if !strings.Contains(out, family) {
			t.Fatalf("metric family %s missing from export:\n%s", family, out)
		}
	}
	spans := o.Trace().Filter("sched", "job")
	if len(spans) == 0 {
		t.Fatal("no per-job spans recorded")
	}
}

// recordingHooks counts lease churn delivered to a job.
type recordingHooks struct {
	grown, shrunk int
}

func (h *recordingHooks) Grow(cores int) error   { h.grown += cores; return nil }
func (h *recordingHooks) Shrink(cores int) error { h.shrunk += cores; return nil }

// TestSchedulerElasticityHooks: every core leased to a job is eventually
// reclaimed, and the hooks see both sides.
func TestSchedulerElasticityHooks(t *testing.T) {
	eng, mkt, brain := testHarness(t, 1)
	cfg := testConfig(brain)
	var hooks []*recordingHooks
	cfg.Hooks = func(Job) ElasticHooks {
		h := &recordingHooks{}
		hooks = append(hooks, h)
		return h
	}
	s, err := New(eng, mkt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := s.Submit(Job{ID: i, Name: "hooked", Spec: smallSpec()}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, jr := range res.Jobs {
		if !jr.Completed {
			t.Fatalf("job %d incomplete", jr.Job.ID)
		}
	}
	if len(hooks) != 2 {
		t.Fatalf("hooks built for %d jobs, want 2", len(hooks))
	}
	grown := 0
	for i, h := range hooks {
		if h.grown != h.shrunk {
			t.Fatalf("hook %d unbalanced: grew %d, shrank %d", i, h.grown, h.shrunk)
		}
		grown += h.grown
	}
	if grown == 0 {
		t.Fatal("no cores ever leased through the hooks")
	}
}

func TestSchedulerSchemeAdapter(t *testing.T) {
	eng, mkt, brain := testHarness(t, 1)
	res, err := SchedulerScheme{Brain: brain}.Run(eng, mkt, smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "sched-fair" {
		t.Fatalf("scheme name %q", res.Scheme)
	}
	if !res.Completed || res.Cost <= 0 || res.Runtime <= 0 {
		t.Fatalf("adapter result %+v", res)
	}
}

func TestSchedulerValidation(t *testing.T) {
	eng, mkt, brain := testHarness(t, 1)
	if _, err := New(eng, mkt, Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := testConfig(brain)
	s, err := New(eng, mkt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(Job{ID: 0, Spec: core.JobSpec{}}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if err := s.Submit(Job{ID: 0, Spec: smallSpec()}); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(Job{ID: 0, Spec: smallSpec()}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	if err := s.Submit(Job{ID: 1, Spec: smallSpec(), Arrival: -time.Hour}); err == nil {
		t.Fatal("negative arrival accepted")
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(Job{ID: 2, Spec: smallSpec()}); err == nil {
		t.Fatal("Submit after Run accepted")
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}
