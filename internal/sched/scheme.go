package sched

import (
	"fmt"

	"proteus/internal/bidbrain"
	"proteus/internal/core"
	"proteus/internal/market"
	"proteus/internal/obs"
	"proteus/internal/sim"
)

// SchedulerScheme adapts the multi-job scheduler to the single-job
// scheme harness: the spec runs as a one-job workload under the broker,
// so the scheduler's accounting is directly comparable with the
// checkpointing / AgileML / Proteus schemes.
type SchedulerScheme struct {
	Brain *bidbrain.Brain
	// Policy arbitrates shares (irrelevant for one job, but kept so
	// harness runs exercise the configured policy); nil means FairShare.
	Policy   Policy
	Observer *obs.Observer
}

// Name implements core.Scheme.
func (s SchedulerScheme) Name() string {
	p := s.Policy
	if p == nil {
		p = FairShare{}
	}
	return fmt.Sprintf("sched-%s", p.Name())
}

// Run implements core.Scheme.
func (s SchedulerScheme) Run(eng *sim.Engine, mkt *market.Market, spec core.JobSpec) (core.Result, error) {
	sch, err := New(eng, mkt, Config{
		Brain:         s.Brain,
		Policy:        s.Policy,
		ReliableType:  spec.ReliableType,
		ReliableCount: spec.ReliableCount,
		MaxSpotCores:  spec.MaxSpotCores,
		ChunkCores:    spec.ChunkCores,
		Observer:      s.Observer,
	})
	if err != nil {
		return core.Result{}, err
	}
	if err := sch.Submit(Job{ID: 0, Name: "job", Spec: spec}); err != nil {
		return core.Result{}, err
	}
	res, err := sch.Run()
	if err != nil {
		return core.Result{}, err
	}
	jr := res.Jobs[0]
	return core.Result{
		Scheme:    s.Name(),
		Completed: jr.Completed,
		Cost:      res.TotalCost - res.UnusedPaid,
		Runtime:   jr.Runtime,
		Usage:     res.Usage,
		Evictions: jr.Evictions,
	}, nil
}
