package sched

import (
	"context"
	"fmt"
	"runtime"
	"time"
)

// ServeConfig tunes how Serve paces the virtual clock against the wall
// clock.
type ServeConfig struct {
	// Speedup is how many seconds of virtual (market) time elapse per
	// wall-clock second while at least one job is in flight. Zero or
	// negative steps the engine as fast as possible. Either way, virtual
	// time never advances while the scheduler is idle, so the market
	// horizon is consumed only by actual work — a service can sit idle
	// for days of wall time without exhausting its price traces.
	Speedup float64
}

// Serve turns the scheduler into a long-running service: it drives the
// engine, paced against the wall clock, while Submit injects jobs from
// other goroutines (the HTTP control plane). Unlike Run it may start
// with zero jobs and keeps waiting for more after the current batch
// drains. When ctx is canceled the scheduler stops accepting
// submissions, fast-forwards the in-flight jobs to completion (or the
// market horizon, whichever comes first), executes the shutdown/drain
// accounting, and returns the consolidated Result — exactly the
// accounting an equivalent batch Run would have produced for the same
// submissions on the same seed.
func (s *Scheduler) Serve(ctx context.Context, sc ServeConfig) (*Result, error) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return nil, fmt.Errorf("sched: Serve after Run or Serve")
	}
	if err := s.startJobsLocked(); err != nil {
		s.mkt.SetHandler(nil)
		s.mu.Unlock()
		return nil, err
	}
	vtarget := s.eng.Now() // virtual budget the pace has released
	if s.resumeTo > vtarget {
		// Recovered scheduler: the crashed run had already reached
		// resumeTo on the virtual clock. Pre-releasing that budget makes
		// the loop replay the recovered history unpaced (every next event
		// is within vtarget) and resume wall-clock pacing exactly where
		// the crash happened.
		vtarget = s.resumeTo
	}
	s.mu.Unlock()

	lastWall := time.Now()
	for {
		wait := time.Duration(-1) // <0: sleep until wake or shutdown
		s.mu.Lock()
		if s.runErr != nil || s.eng.Now() > s.horizon {
			break // settle with the lock held
		}
		active := !s.allTerminal()
		if !active && s.closing {
			break
		}
		if active {
			next, ok := s.eng.Next()
			if !ok {
				// No events while jobs are outstanding: nothing can make
				// progress (the decision ticker was stopped or the market is
				// spent). Settle rather than spin.
				break
			}
			paced := sc.Speedup > 0 && !s.closing
			if paced {
				wallNow := time.Now()
				vtarget += time.Duration(float64(wallNow.Sub(lastWall)) * sc.Speedup)
				lastWall = wallNow
			}
			if !paced || next <= vtarget {
				s.eng.Step()
				s.mu.Unlock()
				// Unfair-mutex handoff: an unpaced loop re-locks immediately
				// and starves Submit callers into multi-second tails; yield
				// the processor when anyone is waiting for the lock.
				if s.submitWaiters.Load() > 0 {
					runtime.Gosched()
				}
				continue
			}
			// Ahead of the pace: sleep on the wall clock until the next
			// event's virtual time is released (or a submission lands).
			wait = time.Duration(float64(next-vtarget) / sc.Speedup)
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
		}
		if !active {
			// Quiescent: every event at the current instant has run and
			// the engine will not step again until a submission lands, so
			// the instant's coalesced utilization point is final. Flushing
			// here (rather than only at settle) lets a live timeline show
			// the drop to idle while the service waits for work.
			s.flushTimelineLocked()
		}
		s.mu.Unlock()

		var timer *time.Timer
		var fire <-chan time.Time
		if wait >= 0 {
			timer = time.NewTimer(wait)
			fire = timer.C
		}
		select {
		case <-ctx.Done():
			s.mu.Lock()
			s.closing = true
			s.mu.Unlock()
		case <-s.wake:
		case <-fire:
		}
		if timer != nil {
			timer.Stop()
		}
		if wait < 0 {
			// Idle wall time never accrues virtual budget. A paced sleep
			// (wait >= 0) keeps its base: that wall time is exactly what
			// releases the next event.
			lastWall = time.Now()
		}
	}
	res, err := s.settleLocked()
	s.mu.Unlock()
	return res, err
}
