package sched

import (
	"context"
	"strings"
	"testing"
	"time"
)

// waitState polls until the job reaches the state or the deadline hits.
func waitState(t *testing.T, s *Scheduler, id int, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if st, ok := s.Status(id); ok && st.State == want {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	st, _ := s.Status(id)
	t.Fatalf("job %d stuck in %v, want %v", id, st.State, want)
	return JobStatus{}
}

// TestServeSubmitLifecycle drives the scheduler as a live service:
// submissions land while Serve runs, duplicates are refused at any
// point, late submissions have their past arrival clamped to "now", and
// the drain rejects new work then settles both jobs into one bill.
func TestServeSubmitLifecycle(t *testing.T) {
	eng, mkt, brain := testHarness(t, 51)
	s, err := New(eng, mkt, testConfig(brain))
	if err != nil {
		t.Fatal(err)
	}
	sub := s.Subscribe(4096)
	defer sub.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resCh := make(chan *Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := s.Serve(ctx, ServeConfig{}) // unpaced
		resCh <- res
		errCh <- err
	}()

	// Submission after the run started (the live path Run never takes).
	if err := s.Submit(Job{ID: 0, Name: "live-a", Spec: smallSpec()}); err != nil {
		t.Fatal(err)
	}
	// Duplicate job IDs are refused while running.
	if err := s.Submit(Job{ID: 0, Name: "dup", Spec: smallSpec()}); err == nil ||
		!strings.Contains(err.Error(), "duplicate job ID") {
		t.Fatalf("duplicate Submit: %v", err)
	}
	first := waitState(t, s, 0, Done)
	if first.Work <= 0 {
		t.Fatalf("job 0 finished with no work: %+v", first)
	}

	// A second submission while the virtual clock sits mid-run: its
	// requested arrival offset (0) is already in the past, so the
	// effective arrival clamps forward to the current virtual instant.
	if err := s.Submit(Job{ID: 1, Name: "live-b", Spec: smallSpec()}); err != nil {
		t.Fatal(err)
	}
	second := waitState(t, s, 1, Done)
	if second.Job.Arrival <= 0 {
		t.Fatalf("late submission kept past arrival %v, want clamp to now", second.Job.Arrival)
	}
	if second.Job.Arrival < first.FinishedAt {
		t.Fatalf("job 1 arrival %v before job 0 finished %v", second.Job.Arrival, first.FinishedAt)
	}

	cancel()
	res := <-resCh
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	// The drain refuses new work.
	if err := s.Submit(Job{ID: 2, Spec: smallSpec()}); err == nil {
		t.Fatal("Submit accepted after the service drained")
	}

	if len(res.Jobs) != 2 {
		t.Fatalf("%d job results, want 2", len(res.Jobs))
	}
	for _, jr := range res.Jobs {
		if jr.State != Done || jr.Cost <= 0 {
			t.Fatalf("job %d: state %v cost %.4f", jr.Job.ID, jr.State, jr.Cost)
		}
	}
	if res.TotalCost <= 0 {
		t.Fatalf("total cost %.4f", res.TotalCost)
	}

	// The event stream carried the full lifecycle for both jobs, in
	// order, with no drops at this buffer size.
	if n := sub.Dropped(); n != 0 {
		t.Fatalf("%d events dropped", n)
	}
	sub.Close()
	seen := map[int][]string{}
	for ev := range sub.C {
		if ev.Kind == EventTimeline {
			continue
		}
		seen[ev.JobID] = append(seen[ev.JobID], ev.Kind)
	}
	want := []string{EventQueued, EventAdmitted, EventRunning, EventDone}
	for id := 0; id <= 1; id++ {
		if strings.Join(seen[id], ",") != strings.Join(want, ",") {
			t.Fatalf("job %d events %v, want %v", id, seen[id], want)
		}
	}
}

// TestServeRejectsSecondStart: Serve and Run are both one-shot.
func TestServeRejectsSecondStart(t *testing.T) {
	eng, mkt, brain := testHarness(t, 52)
	s, err := New(eng, mkt, testConfig(brain))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(Job{ID: 0, Spec: smallSpec()}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Serve(context.Background(), ServeConfig{}); err == nil {
		t.Fatal("Serve accepted after Run")
	}
	if err := s.Submit(Job{ID: 1, Spec: smallSpec()}); err == nil {
		t.Fatal("Submit accepted after Run finished")
	}
}

// TestServePacedMakesProgress covers the paced loop: with a large
// speedup the virtual clock is throttled against the wall clock but the
// job still completes promptly.
func TestServePacedMakesProgress(t *testing.T) {
	eng, mkt, brain := testHarness(t, 53)
	s, err := New(eng, mkt, testConfig(brain))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resCh := make(chan *Result, 1)
	go func() {
		res, _ := s.Serve(ctx, ServeConfig{Speedup: 36000}) // 10 virtual hours per wall second
		resCh <- res
	}()
	if err := s.Submit(Job{ID: 0, Spec: smallSpec()}); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, 0, Done)
	cancel()
	res := <-resCh
	if len(res.Jobs) != 1 || res.Jobs[0].State != Done {
		t.Fatalf("paced serve result %+v", res.Jobs)
	}
}

// TestServeFlushesIdleTimeline: once every job is terminal the serve
// loop goes quiescent with the virtual clock parked at the last event,
// so the final coalesced utilization point can no longer be flushed by
// time moving past it. The loop must flush it on the idle transition —
// a live /v1/timeline viewer has to see the drop to idle while the
// service sits waiting for work, not only after the drain.
func TestServeFlushesIdleTimeline(t *testing.T) {
	eng, mkt, brain := testHarness(t, 57)
	s, err := New(eng, mkt, testConfig(brain))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resCh := make(chan *Result, 1)
	go func() {
		res, _ := s.Serve(ctx, ServeConfig{}) // unpaced
		resCh <- res
	}()
	if err := s.Submit(Job{ID: 0, Name: "idle-a", Spec: smallSpec()}); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, 0, Done)

	// Before the drain: the retained timeline must already end on the
	// idle state (no leased cores, nothing running).
	var last UtilPoint
	deadline := time.Now().Add(10 * time.Second)
	for {
		if tl := s.Timeline(); len(tl) > 0 {
			last = tl[len(tl)-1]
			if last.LeasedCores == 0 && last.Running == 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeline never showed the drop to idle; last point %+v", last)
		}
		time.Sleep(time.Millisecond)
	}

	cancel()
	res := <-resCh
	// The idle flush must not have duplicated the point: the settled
	// timeline carries strictly increasing instants.
	for i := 1; i < len(res.Timeline); i++ {
		if res.Timeline[i].At <= res.Timeline[i-1].At {
			t.Fatalf("timeline instants not strictly increasing at %d: %v then %v",
				i, res.Timeline[i-1].At, res.Timeline[i].At)
		}
	}
}
