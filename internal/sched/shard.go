package sched

import (
	"container/heap"
	"sync"
	"time"

	"proteus/internal/bidbrain"
	"proteus/internal/market"
	"proteus/internal/wal"
)

// The sharded decision loop.
//
// Config.Shards partitions the scheduler's per-tick work into N decision
// shards keyed by the same wal.ShardFor hash that routes WAL records, so
// a job's admission queue, share evaluation, and durability stream all
// live on one shard. The decision tick is a short-hold protocol:
//
//  1. snapshot — under the lock, capture everything the decision reads:
//     accrued work, demand/have, the schedulable pool, spot prices.
//  2. compute — with the lock RELEASED, each shard evaluates its slice
//     of the footprint (Beta/Omega per allocation) and its jobs' share
//     requests into disjoint positions of globally-ordered slices; the
//     ordering-sensitive float reductions (candidate search, policy
//     shares) then run single-threaded over the merged slices, in fixed
//     global order — so the result is bit-identical at any shard count.
//  3. commit — under the lock again, revalidate the snapshot and apply:
//     request the planned acquisition and/or move leases to the planned
//     shares. If anything moved while unlocked, throw the plan away and
//     recompute inline (the always-correct fallback).
//
// Unlocking mid-tick is safe because the engine is quiescent inside a
// callback: the only concurrent mutator is Submit, which appends a
// Pending job and schedules its arrival without touching the running
// set, the footprint, or the market.

// decShard is one decision shard: the slice of the admission queue whose
// jobs hash to it. (Per-tick evaluation state lives in tickState; the
// shards' compute phases write disjoint index ranges of shared slices,
// so the shard itself carries no evaluation fields.)
type decShard struct {
	queue admitHeap
}

// popAdmit pops the admission-order minimum across every shard's queue.
// admitBefore is a total order, so taking the least of the shard heads
// is exactly the job one global heap would pop — sharding the queue
// never changes who is admitted. This is also where idle shards steal
// work: a shard whose queue is empty contributes nothing and the pop
// proceeds from whichever shard holds the global head.
func (s *Scheduler) popAdmit() *jobRun {
	best := -1
	for k := range s.shards {
		h := s.shards[k].queue
		if len(h) == 0 {
			continue
		}
		if best < 0 || admitBefore(h[0], s.shards[best].queue[0]) {
			best = k
		}
	}
	if best < 0 {
		return nil
	}
	return heap.Pop(&s.shards[best].queue).(*jobRun)
}

// queuedJobs returns every queued job across the shard heaps (heap
// order within a shard, shard-major). Only for snapshots/tests; the
// admission path uses popAdmit.
func (s *Scheduler) queuedJobs() []*jobRun {
	var out []*jobRun
	for k := range s.shards {
		out = append(out, s.shards[k].queue...)
	}
	return out
}

// --- scratch free-lists ---------------------------------------------

// The broker's hot walks (rebalance, footprint, onJobDone) borrow their
// slices from per-scheduler free-lists instead of allocating. Free-lists
// rather than single scratch fields because the walks nest: rebalance →
// grant → recomputeRate → onJobDone → rebalance("completion").

func (s *Scheduler) borrowAllocIDs() []market.AllocationID {
	var buf []market.AllocationID
	if n := len(s.idFree); n > 0 {
		buf = s.idFree[n-1][:0]
		s.idFree = s.idFree[:n-1]
	}
	return append(buf, s.allocOrder...)
}

func (s *Scheduler) returnAllocIDs(buf []market.AllocationID) {
	s.idFree = append(s.idFree, buf)
}

func (s *Scheduler) borrowRunnable() []*jobRun {
	var buf []*jobRun
	if n := len(s.runFree); n > 0 {
		buf = s.runFree[n-1][:0]
		s.runFree = s.runFree[:n-1]
	}
	return append(buf, s.running...)
}

func (s *Scheduler) returnRunnable(buf []*jobRun) {
	s.runFree = append(s.runFree, buf)
}

func (s *Scheduler) borrowReqs() []ShareRequest {
	if n := len(s.reqFree); n > 0 {
		buf := s.reqFree[n-1][:0]
		s.reqFree = s.reqFree[:n-1]
		return buf
	}
	return nil
}

func (s *Scheduler) returnReqs(buf []ShareRequest) {
	s.reqFree = append(s.reqFree, buf)
}

func (s *Scheduler) borrowTarget() map[int]int {
	if n := len(s.tgtFree); n > 0 {
		m := s.tgtFree[n-1]
		s.tgtFree = s.tgtFree[:n-1]
		for k := range m {
			delete(m, k)
		}
		return m
	}
	return make(map[int]int, 8)
}

func (s *Scheduler) returnTarget(m map[int]int) {
	s.tgtFree = append(s.tgtFree, m)
}

func (s *Scheduler) borrowFoot() []bidbrain.AllocState {
	if n := len(s.footFree); n > 0 {
		buf := s.footFree[n-1][:0]
		s.footFree = s.footFree[:n-1]
		return buf
	}
	return nil
}

func (s *Scheduler) returnFoot(buf []bidbrain.AllocState) {
	s.footFree = append(s.footFree, buf)
}

// --- the short-hold tick --------------------------------------------

// allocSnap is one schedulable allocation's decision inputs, captured
// under the lock.
type allocSnap struct {
	id        market.AllocationID
	typ       market.InstanceType
	count     int
	price     float64
	bidDelta  float64
	remaining time.Duration
}

// tickSnap is everything one decision tick reads, captured under the
// lock so the compute phase can run without it.
type tickSnap struct {
	now     time.Duration
	elapsed time.Duration
	demand  int
	have    int
	// needAcq mirrors decide's have<demand gate: the footprint and
	// price snapshots below are only taken (and evaluated) when it is
	// set.
	needAcq  bool
	pricesOK bool
	prices   map[string]float64 // aliases s.priceScratch
	types    []market.InstanceType
	reliable bidbrain.AllocState
	allocs   []allocSnap
	runnable []*jobRun
}

// tickPlan is the compute phase's output: disjointly-written per-shard
// results merged in global order, plus the sequential reductions over
// them.
type tickPlan struct {
	errs []error // per shard; any non-nil cancels the acquisition
	// foot[0] is the reliable anchor; foot[i+1] is allocs[i], written by
	// the shard owning index i — the merge in fixed shard order is the
	// slice's natural order.
	foot   []bidbrain.AllocState
	reqs   []ShareRequest // reqs[r] is runnable[r], written by its job's shard
	shares []int
	cand   *bidbrain.Candidate
	candV  bidbrain.Candidate
	n      int
}

// tickState is the reusable snapshot+plan pair (ticks never nest).
type tickState struct {
	snap tickSnap
	plan tickPlan
}

// tickDecide runs one decision tick under the short-hold protocol. It is
// called from the decision ticker with mu held and returns with mu held,
// releasing it only across the compute phase.
func (s *Scheduler) tickDecide() {
	st := s.tickScratch
	if st == nil {
		st = &tickState{}
		s.tickScratch = st
	}
	s.snapshotTick(st)
	// The engine is quiescent inside a callback and Submit (the only
	// concurrent mutator) never touches the snapshot's inputs, so the
	// lock can drop while the shards evaluate.
	s.mu.Unlock()
	s.computePlan(st)
	s.mu.Lock()
	s.commitTick(st)
}

// snapshotTick captures the tick's inputs under the lock. It also
// accrues every running job to now — the old inline tick did the same
// across decide (the urgent job) and rebalance (everyone), and accrual
// is idempotent at a fixed instant, so hoisting it here is bit-neutral.
func (s *Scheduler) snapshotTick(st *tickState) {
	snap := &st.snap
	now := s.eng.Now()
	snap.now = now
	snap.elapsed = now - s.startAt
	snap.runnable = snap.runnable[:0]
	for _, j := range s.running {
		s.accrueJob(j)
		snap.runnable = append(snap.runnable, j)
	}
	snap.demand = s.totalDemand()
	snap.have = s.spotCores()
	snap.needAcq = snap.have < snap.demand
	snap.allocs = snap.allocs[:0]
	snap.pricesOK = false
	if !snap.needAcq {
		return
	}
	snap.reliable = bidbrain.AllocState{
		Type:      s.reliable.Type,
		Count:     s.reliable.Count,
		Price:     s.reliable.Type.OnDemand,
		Remaining: s.reliable.HourEnd(now) - now,
		OnDemand:  true,
	}
	for _, id := range s.allocOrder {
		ba := s.allocs[id]
		if ba.outOfPool() {
			continue
		}
		snap.allocs = append(snap.allocs, allocSnap{
			id:        id,
			typ:       ba.alloc.Type,
			count:     ba.alloc.Count,
			price:     ba.alloc.HourCharge() / float64(ba.alloc.Count),
			bidDelta:  ba.bidDelta,
			remaining: ba.alloc.HourEnd(now) - now,
		})
	}
	snap.prices = s.pollPrices()
	snap.types = s.mkt.Types()
	snap.pricesOK = true
}

// computePlan evaluates the snapshot with the lock released. The
// per-shard phase writes disjoint global indexes; the reductions that
// are sensitive to float evaluation order (candidate search, policy
// shares) run single-threaded over the merged, globally-ordered slices,
// so the plan is bit-identical at any shard count.
func (s *Scheduler) computePlan(st *tickState) {
	snap, plan := &st.snap, &st.plan
	nsh := len(s.shards)
	plan.cand = nil
	plan.n = 0
	plan.shares = plan.shares[:0]
	if cap(plan.errs) < nsh {
		plan.errs = make([]error, nsh)
	}
	plan.errs = plan.errs[:nsh]
	for k := range plan.errs {
		plan.errs[k] = nil
	}
	plan.foot = growFoot(plan.foot, len(snap.allocs)+1)
	plan.reqs = growReqs(plan.reqs, len(snap.runnable))
	if nsh == 1 || len(snap.allocs)+len(snap.runnable) < 2 {
		for k := 0; k < nsh; k++ {
			s.evalShard(st, k)
		}
	} else {
		var wg sync.WaitGroup
		for k := 0; k < nsh; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				s.evalShard(st, k)
			}(k)
		}
		wg.Wait()
	}
	// Sequential reductions over the merged per-shard results.
	if snap.needAcq && snap.pricesOK {
		evalErr := false
		for _, err := range plan.errs {
			if err != nil {
				evalErr = true
				break
			}
		}
		if !evalErr {
			plan.foot[0] = snap.reliable
			s.searchCandidate(snap, plan)
		}
	}
	if len(snap.runnable) > 0 {
		plan.shares = append(plan.shares, s.cfg.Policy.Shares(snap.elapsed, plan.reqs, snap.have)...)
	}
}

// evalShard is shard k's compute slice: Beta/Omega for the footprint
// entries it owns (allocations stripe round-robin over shards — they
// carry no job identity) and share requests for its jobs (hashed by
// wal.ShardFor, the same mapping that routes their WAL records).
func (s *Scheduler) evalShard(st *tickState, k int) {
	snap, plan := &st.snap, &st.plan
	nsh := len(s.shards)
	if snap.needAcq && snap.pricesOK {
		for i := k; i < len(snap.allocs); i += nsh {
			a := &snap.allocs[i]
			beta, err := s.cfg.Brain.Beta(a.typ.Name, a.bidDelta)
			if err != nil {
				plan.errs[k] = err
				break
			}
			omega, err := s.cfg.Brain.ExpectedUsefulTime(a.typ.Name, a.bidDelta, a.remaining)
			if err != nil {
				plan.errs[k] = err
				break
			}
			plan.foot[i+1] = bidbrain.AllocState{
				Type:      a.typ,
				Count:     a.count,
				Price:     a.price,
				Beta:      beta,
				Remaining: a.remaining,
				Omega:     omega,
			}
		}
	}
	for r, j := range snap.runnable {
		if wal.ShardFor(j.job.ID, nsh) != k {
			continue
		}
		plan.reqs[r] = ShareRequest{
			ID:            j.job.ID,
			Priority:      j.job.Priority,
			Arrival:       j.job.Arrival,
			Deadline:      j.job.Deadline,
			MaxCores:      j.job.Spec.MaxSpotCores,
			NeededCores:   neededCoresAt(j, snap.elapsed),
			RemainingWork: j.job.Spec.TargetWork - j.work,
		}
	}
}

// neededCoresAt is neededCores phrased over the snapshot instant:
// identical arithmetic ((startAt+Deadline)-now == Deadline-elapsed in
// exact integer nanoseconds), no engine access.
func neededCoresAt(j *jobRun, elapsed time.Duration) int {
	if j.job.Deadline == 0 {
		return 0
	}
	left := (j.job.Deadline - elapsed).Hours()
	if left <= 0 {
		return j.job.Spec.MaxSpotCores
	}
	p := j.job.Spec.Params
	perCore := p.Phi * p.NuPerCore
	if perCore <= 0 {
		return j.job.Spec.MaxSpotCores
	}
	need := int((j.job.Spec.TargetWork-j.work)/(left*perCore)) + 1
	if need > j.job.Spec.MaxSpotCores {
		need = j.job.Spec.MaxSpotCores
	}
	if need < 0 {
		need = 0
	}
	return need
}

// searchCandidate mirrors decide's acquisition search over the merged
// footprint (tick decisions pass no parent span, so the unaudited
// variants apply).
func (s *Scheduler) searchCandidate(snap *tickSnap, plan *tickPlan) {
	types := snap.types
	smallest := types[0]
	for _, t := range types {
		if t.VCPUs < smallest.VCPUs {
			smallest = t
		}
	}
	count := s.cfg.ChunkCores / smallest.VCPUs
	if count <= 0 {
		count = 1
	}
	var cand *bidbrain.Candidate
	if goal, ok := urgentDeadlineAt(snap); ok {
		dc, err := s.cfg.Brain.DeadlineAcquisition(plan.foot, goal, snap.prices, types, count)
		if err == nil && dc != nil {
			cand = &dc.Candidate
		}
	}
	if cand == nil {
		var err error
		if s.fc != nil {
			cand, err = s.cfg.Brain.BestAcquisitionForecast(plan.foot, snap.prices, types, count, s.fc)
		} else {
			cand, err = s.cfg.Brain.BestAcquisition(plan.foot, snap.prices, types, count)
		}
		if err != nil || cand == nil {
			return
		}
	}
	maxCount := (snap.demand - snap.have) / cand.Type.VCPUs
	n := cand.Count
	if n > maxCount {
		n = maxCount
	}
	if n <= 0 {
		return
	}
	plan.candV = *cand
	plan.cand = &plan.candV
	plan.n = n
}

// urgentDeadlineAt is urgentDeadline over the snapshot: same selection
// (earliest deadline among running deadline jobs, first wins ties in
// running-set order) and same arithmetic, with work already accrued to
// the snapshot instant.
func urgentDeadlineAt(snap *tickSnap) (bidbrain.DeadlineGoal, bool) {
	var best *jobRun
	for _, j := range snap.runnable {
		if j.job.Deadline == 0 {
			continue
		}
		if best == nil || j.job.Deadline < best.job.Deadline {
			best = j
		}
	}
	if best == nil {
		return bidbrain.DeadlineGoal{}, false
	}
	remaining := best.job.Spec.TargetWork - best.work
	left := best.job.Deadline - snap.elapsed
	if remaining <= 0 || left <= 0 {
		return bidbrain.DeadlineGoal{}, false
	}
	return bidbrain.DeadlineGoal{RemainingWork: remaining, Deadline: left}, true
}

// commitTick revalidates the snapshot and applies the plan under the
// re-acquired lock. Today nothing that runs during the unlocked window
// can move the snapshot's inputs (Submit only appends pending jobs);
// the revalidation keeps the commit honest if that ever changes — on
// any drift the plan is discarded and the decision recomputes inline,
// which is always correct.
func (s *Scheduler) commitTick(st *tickState) {
	snap, plan := &st.snap, &st.plan
	if s.draining {
		return
	}
	if !s.tickStillValid(snap) {
		s.decide(nil)
		s.rebalance("tick")
		return
	}
	if plan.cand != nil && s.commitAcquire(plan) {
		// Mirror the inline path: decide's acquisition rebalanced with
		// cause "acquire" (inside commitAcquire); the tick's own
		// rebalance then re-divides over the grown footprint.
		s.rebalance("tick")
		return
	}
	s.applyShares(snap.runnable, plan.reqs, plan.shares, "tick")
}

// tickStillValid reports whether the snapshot still describes the
// scheduler: same demand and schedulable cores, same running set, and —
// when an acquisition was planned — the same footprint pool.
func (s *Scheduler) tickStillValid(snap *tickSnap) bool {
	if s.totalDemand() != snap.demand || s.spotCores() != snap.have || len(s.running) != len(snap.runnable) {
		return false
	}
	for i, j := range s.running {
		if snap.runnable[i] != j {
			return false
		}
	}
	if snap.needAcq {
		i := 0
		for _, id := range s.allocOrder {
			if s.allocs[id].outOfPool() {
				continue
			}
			if i >= len(snap.allocs) || snap.allocs[i].id != id {
				return false
			}
			i++
		}
		if i != len(snap.allocs) {
			return false
		}
	}
	return true
}

// commitAcquire executes the planned acquisition — decide's tail path.
func (s *Scheduler) commitAcquire(plan *tickPlan) bool {
	cand := plan.cand
	alloc, err := s.mkt.RequestSpot(cand.Type.Name, plan.n, cand.Bid)
	if err != nil {
		return false
	}
	ba := &brokerAlloc{alloc: alloc, bidDelta: cand.BidDelta}
	s.addAlloc(ba)
	s.walTransition(wal.Record{Kind: wal.KindAcquire, JobID: -1, Alloc: int(alloc.ID),
		Cores: ba.cores(), Amount: cand.Bid, Detail: cand.Type.Name})
	s.scheduleHourEnd(ba)
	s.rebalance("acquire")
	return true
}

func growFoot(buf []bidbrain.AllocState, n int) []bidbrain.AllocState {
	if cap(buf) < n {
		return make([]bidbrain.AllocState, n)
	}
	return buf[:n]
}

func growReqs(buf []ShareRequest, n int) []ShareRequest {
	if cap(buf) < n {
		return make([]ShareRequest, n)
	}
	return buf[:n]
}
