package sched

import (
	"container/heap"
	"encoding/json"
	"sort"
	"testing"
	"time"

	"proteus/internal/wal"
)

// shardJobs is the sharding workload: enough jobs to spread across the
// shard hash, staggered arrivals, mixed priorities, a couple of
// deadlines, and a concurrency cap so the admission queue actually
// queues.
func shardJobs() []Job {
	jobs := make([]Job, 10)
	for i := range jobs {
		jobs[i] = Job{
			ID:       i,
			Name:     "tenant",
			Spec:     smallSpec(),
			Arrival:  time.Duration(i) * 7 * time.Minute,
			Priority: i % 3,
		}
	}
	jobs[4].Deadline = 48 * time.Hour
	jobs[9].Deadline = 72 * time.Hour
	return jobs
}

// TestShardedSchedulerBitIdentical is the sharding acceptance test: the
// same seed and workload must produce byte-identical bills, stats, and
// trace trees at every shard count. Run under -race in CI, this also
// proves the short-hold tick's unlocked compute phase is data-race-free.
func TestShardedSchedulerBitIdentical(t *testing.T) {
	f := newRecoveryFixture(t, 21)
	run := func(shards int) string {
		eng, mkt := f.env(t)
		cfg := f.config(eng)
		cfg.Shards = shards
		cfg.MaxConcurrent = 3
		s, err := New(eng, mkt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range shardJobs() {
			if err := s.Submit(j); err != nil {
				t.Fatal(err)
			}
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		stats, err := json.Marshal(s.Stats())
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(t, res, cfg.Observer) + string(stats)
	}
	base := run(1)
	for _, n := range []int{2, 3, 8} {
		if got := run(n); got != base {
			t.Fatalf("shards=%d diverged from shards=1: bills, stats, or trace trees differ", n)
		}
	}
}

// TestShardedAdmissionMatchesGlobalOrder: popping the minimum across the
// per-shard heaps must yield exactly the total admitBefore order one
// global heap would — work-stealing across shards never reorders
// admission.
func TestShardedAdmissionMatchesGlobalOrder(t *testing.T) {
	s := &Scheduler{shards: make([]decShard, 4)}
	var all []*jobRun
	for id := 0; id < 40; id++ {
		j := &jobRun{job: Job{
			ID:       id,
			Priority: id % 4,
			Arrival:  time.Duration(id%7) * time.Minute,
		}, queueIdx: -1}
		if id%3 == 0 {
			j.job.Deadline = time.Duration(24+id%5) * time.Hour
		}
		all = append(all, j)
		heap.Push(&s.shards[wal.ShardFor(id, 4)].queue, j)
	}
	want := append([]*jobRun(nil), all...)
	sort.Slice(want, func(i, j int) bool { return admitBefore(want[i], want[j]) })
	for i, w := range want {
		got := s.popAdmit()
		if got == nil {
			t.Fatalf("popAdmit ran dry at %d of %d", i, len(want))
		}
		if got != w {
			t.Fatalf("pop %d: got job %d, want job %d", i, got.job.ID, w.job.ID)
		}
		if got.queueIdx != -1 {
			t.Fatalf("pop %d: job %d queueIdx not reset", i, got.job.ID)
		}
	}
	if s.popAdmit() != nil {
		t.Fatal("popAdmit returned a job from empty queues")
	}
}

// TestShardedWALCrashRecovery is the sharded durability acceptance test:
// a sharded scheduler logging to a sharded WAL, recovered via the merged
// multi-stream replay, must reproduce the uninterrupted run's bills and
// trace trees byte-identically.
func TestShardedWALCrashRecovery(t *testing.T) {
	const seed = 79
	f := newRecoveryFixture(t, seed)
	jobs := crashJobs()
	want := f.batchFingerprint(t, jobs)

	walDir := t.TempDir()
	log, err := wal.CreateSharded(walDir, wal.Meta{Seed: seed, Note: "shard-crash-test", Shards: 3},
		3, wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, mkt := f.env(t)
	cfg := f.config(eng)
	cfg.WAL = log
	cfg.Shards = 3
	s, err := New(eng, mkt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	lastSeq := log.LastSeq()
	if st := log.Stats(); st.Shards != 3 || st.Submits != len(jobs) {
		t.Fatalf("sharded wal stats = %+v", st)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash" and recover: merge the three streams, rebuild the
	// environment, replay, and drive to completion with the reopened log
	// attached live.
	log2, replay, err := wal.OpenSharded(walDir, wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if replay.LastSeq < lastSeq {
		t.Fatalf("merged replay LastSeq %d < %d written", replay.LastSeq, lastSeq)
	}
	if len(replay.Jobs) != len(jobs) {
		t.Fatalf("recovered %d jobs, want %d", len(replay.Jobs), len(jobs))
	}
	eng2, mkt2 := f.env(t)
	cfg2 := f.config(eng2)
	cfg2.Shards = 3
	rs, err := Recover(eng2, mkt2, cfg2, replay, log2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rs.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	if st := rs.Stats(); !st.Recovered || st.RecoveredJobs != len(jobs) {
		t.Fatalf("recovered stats = %+v", st)
	}
	if got := fingerprint(t, res, cfg2.Observer); got != want {
		t.Fatal("recovered sharded run diverges from uninterrupted run")
	}
	if err := log2.Close(); err != nil {
		t.Fatal(err)
	}
}
