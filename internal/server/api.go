package server

import (
	"time"

	"proteus/internal/jobspec"
	"proteus/internal/obs"
	"proteus/internal/sched"
	"proteus/internal/wal"
)

// Wire types for the v1 control-plane API. Durations cross the wire in
// the units operators think in — minutes of virtual time for offsets,
// hours for deadlines — matching the jobspec submission shape.

// JobStatus is the wire form of one job's live status
// (GET /v1/jobs, GET /v1/jobs/{id}, and the SSE "status" snapshot).
type JobStatus struct {
	ID             int     `json:"id"`
	Name           string  `json:"name"`
	State          string  `json:"state"`
	Priority       int     `json:"priority"`
	ArrivalMinutes float64 `json:"arrival_minutes"`
	DeadlineHours  float64 `json:"deadline_hours,omitempty"`
	// TargetWork and Work are core-hours; Work accrues live.
	Work        float64 `json:"work"`
	TargetWork  float64 `json:"target_work"`
	LeasedCores int     `json:"leased_cores"`
	Evictions   int     `json:"evictions"`
	// Lifecycle timestamps as virtual minutes from scheduler start;
	// present once the job reached the state.
	QueuedAtMinutes   *float64 `json:"queued_at_minutes,omitempty"`
	StartedAtMinutes  *float64 `json:"started_at_minutes,omitempty"`
	FinishedAtMinutes *float64 `json:"finished_at_minutes,omitempty"`
	// TraceID names the job's causal trace (GET /v1/jobs/{id}/trace), as
	// 16 hex digits; empty when tracing is disabled.
	TraceID string `json:"trace_id,omitempty"`
}

func minutes(d time.Duration) float64 { return d.Minutes() }

func minutesp(d time.Duration) *float64 {
	m := d.Minutes()
	return &m
}

func jobStatusWire(st sched.JobStatus) JobStatus {
	out := JobStatus{
		ID:             st.Job.ID,
		Name:           st.Job.Name,
		State:          st.State.String(),
		Priority:       st.Job.Priority,
		ArrivalMinutes: minutes(st.Job.Arrival),
		DeadlineHours:  st.Job.Deadline.Hours(),
		Work:           st.Work,
		TargetWork:     st.Job.Spec.TargetWork,
		LeasedCores:    st.LeasedCores,
		Evictions:      st.Evictions,
		TraceID:        obs.IDString(st.TraceID),
	}
	if st.State != sched.Pending {
		out.QueuedAtMinutes = minutesp(st.QueuedAt)
	}
	if st.State == sched.Running || st.State == sched.Done {
		out.StartedAtMinutes = minutesp(st.StartedAt)
	}
	if st.State == sched.Done {
		out.FinishedAtMinutes = minutesp(st.FinishedAt)
	}
	return out
}

// Stats is the wire form of GET /v1/stats.
type Stats struct {
	VirtualMinutes float64 `json:"virtual_minutes"`
	HorizonMinutes float64 `json:"horizon_minutes"`

	Jobs    int `json:"jobs"`
	Pending int `json:"pending"`
	Queued  int `json:"queued"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Expired int `json:"expired"`

	LeasedCores int `json:"leased_cores"`
	IdleCores   int `json:"idle_cores"`
	Rebalances  int `json:"rebalances"`

	CostSoFar float64 `json:"cost_so_far"`

	Draining    bool `json:"draining"`
	Subscribers int  `json:"subscribers"`

	// Telemetry loss counters; both stay zero on a healthy service and
	// the SLO smoke gate asserts exactly that.
	EventsDropped int    `json:"events_dropped"`
	SpansDropped  uint64 `json:"spans_dropped"`

	// Recovery provenance: set when the scheduler was rebuilt from a
	// write-ahead log. CatchingUp is true while the serve loop is still
	// fast-forwarding through the recovered history (submissions are
	// accepted throughout).
	Recovered     bool `json:"recovered,omitempty"`
	RecoveredJobs int  `json:"recovered_jobs,omitempty"`
	CatchingUp    bool `json:"catching_up,omitempty"`

	// WAL reports the attached write-ahead log's counters; absent when
	// the service runs without durability.
	WAL *wal.Stats `json:"wal,omitempty"`

	// Forecast reports the online eviction forecaster's accuracy and
	// proactive-action counters; absent on reactive schedulers.
	Forecast *sched.ForecastStats `json:"forecast,omitempty"`

	UptimeSeconds float64 `json:"uptime_seconds"`
}

func statsWire(st sched.Stats, uptime time.Duration) Stats {
	var fc *sched.ForecastStats
	if st.Forecast.Enabled {
		f := st.Forecast
		fc = &f
	}
	return Stats{
		Forecast:       fc,
		VirtualMinutes: minutes(st.Now),
		HorizonMinutes: minutes(st.Horizon),
		Jobs:           st.Jobs,
		Pending:        st.Pending,
		Queued:         st.Queued,
		Running:        st.Running,
		Done:           st.Done,
		Expired:        st.Expired,
		LeasedCores:    st.LeasedCores,
		IdleCores:      st.IdleCores,
		Rebalances:     st.Rebalances,
		CostSoFar:      st.CostSoFar,
		Draining:       st.Draining,
		Subscribers:    st.Subscribers,
		EventsDropped:  st.EventsDropped,
		SpansDropped:   st.SpansDropped,
		Recovered:      st.Recovered,
		RecoveredJobs:  st.RecoveredJobs,
		CatchingUp:     st.CatchingUp,
		UptimeSeconds:  uptime.Seconds(),
	}
}

// UtilPoint is the wire form of one utilization timeline sample.
type UtilPoint struct {
	AtMinutes   float64 `json:"at_minutes"`
	LeasedCores int     `json:"leased_cores"`
	IdleCores   int     `json:"idle_cores"`
	Running     int     `json:"running"`
	Queued      int     `json:"queued"`
}

func utilWire(p sched.UtilPoint) UtilPoint {
	return UtilPoint{
		AtMinutes:   minutes(p.At),
		LeasedCores: p.LeasedCores,
		IdleCores:   p.IdleCores,
		Running:     p.Running,
		Queued:      p.Queued,
	}
}

// Event is the wire form of one SSE payload on the /v1/jobs/{id}/events
// and /v1/timeline streams. The SSE "event:" field carries Kind as well.
type Event struct {
	Kind      string     `json:"kind"`
	AtMinutes float64    `json:"at_minutes"`
	JobID     *int       `json:"job_id,omitempty"`
	JobName   string     `json:"job_name,omitempty"`
	State     string     `json:"state,omitempty"`
	Detail    string     `json:"detail,omitempty"`
	Util      *UtilPoint `json:"util,omitempty"`
	// TraceID/SpanID (16 hex digits) locate this very transition inside
	// the job's causal tree; absent for timeline events and untraced runs.
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

func eventWire(ev sched.Event) Event {
	out := Event{
		Kind:      ev.Kind,
		AtMinutes: minutes(ev.At),
		Detail:    ev.Detail,
		TraceID:   obs.IDString(ev.TraceID),
		SpanID:    obs.IDString(ev.SpanID),
	}
	if ev.Kind == sched.EventTimeline {
		if ev.Util != nil {
			u := utilWire(*ev.Util)
			out.Util = &u
		}
	} else {
		id := ev.JobID
		out.JobID = &id
		out.JobName = ev.JobName
		out.State = ev.State.String()
	}
	return out
}

// SubmitResponse reports which jobs a POST /v1/jobs accepted. On error
// Accepted lists the prefix admitted before the failure.
type SubmitResponse struct {
	Accepted []int                `json:"accepted"`
	Error    string               `json:"error,omitempty"`
	Fields   []jobspec.FieldError `json:"fields,omitempty"`
}

// ErrorResponse is the body of every non-2xx JSON reply.
type ErrorResponse struct {
	Error  string               `json:"error"`
	Fields []jobspec.FieldError `json:"fields,omitempty"`
}

// TraceSpan is one node of a job's causal tree
// (GET /v1/jobs/{id}/trace). IDs are 16 hex digits. Times are virtual
// seconds from simulation start; wall-clock cost is deliberately
// excluded so the same seeded run serializes byte-identically at any
// worker count or pacing.
type TraceSpan struct {
	SpanID       string      `json:"span_id"`
	ParentID     string      `json:"parent_id,omitempty"`
	Component    string      `json:"component"`
	Name         string      `json:"name"`
	Detail       string      `json:"detail,omitempty"`
	StartSeconds float64     `json:"start_seconds"`
	EndSeconds   float64     `json:"end_seconds"`
	Open         bool        `json:"open,omitempty"`
	Attrs        any         `json:"attrs,omitempty"`
	Children     []TraceSpan `json:"children,omitempty"`
}

// TraceResponse is the body of GET /v1/jobs/{id}/trace. Roots normally
// holds exactly the job's root span; orphaned subtrees (parents lost to
// tracer retention) surface as extra roots rather than disappearing.
type TraceResponse struct {
	JobID   int         `json:"job_id"`
	TraceID string      `json:"trace_id"`
	Spans   int         `json:"spans"`
	Roots   []TraceSpan `json:"roots"`
}

func traceSpanWire(n *obs.TraceNode) TraceSpan {
	out := TraceSpan{
		SpanID:       obs.IDString(n.SpanID),
		ParentID:     obs.IDString(n.ParentID),
		Component:    n.Component,
		Name:         n.Name,
		Detail:       n.Detail,
		StartSeconds: n.Start.Seconds(),
		EndSeconds:   n.End.Seconds(),
		Open:         n.Open,
		Attrs:        n.Attrs,
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, traceSpanWire(c))
	}
	return out
}

func traceResponseWire(jobID int, traceID uint64, spans []obs.SpanData) TraceResponse {
	resp := TraceResponse{
		JobID:   jobID,
		TraceID: obs.IDString(traceID),
		Spans:   len(spans),
		Roots:   []TraceSpan{},
	}
	for _, root := range obs.BuildTree(spans) {
		resp.Roots = append(resp.Roots, traceSpanWire(root))
	}
	return resp
}
