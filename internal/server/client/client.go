// Package client is the typed Go client for the proteus control-plane
// API: job submission in the jobspec shape, status and stats reads, and
// SSE event streams decoded into the server's wire types.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"proteus/internal/jobspec"
	"proteus/internal/server"
)

// RetryPolicy bounds the client's automatic retry of backpressure
// refusals — 429 (queue full) and 503 (draining) replies. Waits grow
// exponentially from BaseDelay, capped at MaxDelay, with a random
// jitter fraction so a fleet of refused submitters does not retry in
// lockstep; a server Retry-After hint raises the wait when it asks for
// more than the backoff would give.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first call included).
	// Zero or one disables retry.
	MaxAttempts int
	// BaseDelay is the wait before the first retry; each further retry
	// doubles it. Zero picks 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. Zero picks 2s.
	MaxDelay time.Duration
	// Jitter is the fraction of each wait that is randomized (0..1): a
	// wait d becomes d * (1 - Jitter/2 + Jitter*U[0,1)). Negative or
	// zero means no jitter.
	Jitter float64
	// OnRetry, when set, observes every retry before its wait: the
	// refusal's HTTP status and the chosen delay. Must be safe for
	// concurrent use — one policy may serve many goroutines.
	OnRetry func(status int, wait time.Duration)
}

// DefaultRetryPolicy suits a load generator hammering one server: a few
// quick retries under half-jitter, bounded well under a virtual
// decision period.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.5}
}

// delay computes the wait before retry attempt i (1-based).
func (p RetryPolicy) delay(attempt int, hint time.Duration) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base << (attempt - 1)
	if d > max || d <= 0 { // <=0: shift overflow
		d = max
	}
	if p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		d = time.Duration(float64(d) * (1 - j/2 + j*rand.Float64()))
	}
	if hint > d {
		d = hint
	}
	return d
}

// Client talks to one control-plane server.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
}

// New builds a client for the server at base (e.g. "http://127.0.0.1:9090").
// A nil hc uses a fresh http.Client with no timeout — SSE streams are
// long-lived, so callers bound requests with contexts instead. The
// client does not retry; see WithRetry.
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// WithRetry returns a copy of the client that retries backpressure
// refusals (429/503) on Submit and the JSON reads under the policy.
// SSE streams never retry — reconnecting silently would replay or lose
// frames, which the caller must decide about.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	cc := *c
	cc.retry = p
	return &cc
}

// APIError is a non-2xx reply, carrying the server's message and any
// field-level validation errors.
type APIError struct {
	Status int
	Msg    string
	Fields []jobspec.FieldError
	// RetryAfter is the server's Retry-After hint (zero when absent).
	RetryAfter time.Duration
}

// Temporary reports whether the reply invites a retry: 429 (queue
// full) or 503 (draining/overloaded).
func (e *APIError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// Error implements error.
func (e *APIError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("api: HTTP %d", e.Status)
	}
	return fmt.Sprintf("api: HTTP %d: %s", e.Status, e.Msg)
}

// IsNotFound reports whether err is an APIError with status 404.
func IsNotFound(err error) bool {
	e, ok := err.(*APIError)
	return ok && e.Status == http.StatusNotFound
}

func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	e := &APIError{Status: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	var er server.ErrorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		e.Msg, e.Fields = er.Error, er.Fields
	} else {
		var sr server.SubmitResponse
		if json.Unmarshal(body, &sr) == nil && sr.Error != "" {
			e.Msg, e.Fields = sr.Error, sr.Fields
		} else {
			e.Msg = strings.TrimSpace(string(body))
		}
	}
	return e
}

// do issues the request built by mk, retrying temporary refusals
// (429/503) under the client's policy. mk runs once per attempt —
// request bodies cannot be replayed. The returned response has status
// wantCode; any other reply comes back as an error with the body
// drained and closed.
func (c *Client) do(ctx context.Context, mk func() (*http.Request, error), wantCode int) (*http.Response, error) {
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 1; ; attempt++ {
		req, err := mk()
		if err != nil {
			return nil, err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == wantCode {
			return resp, nil
		}
		err = apiError(resp)
		ae, ok := err.(*APIError)
		if attempt >= attempts || !ok || !ae.Temporary() {
			return nil, err
		}
		wait := c.retry.delay(attempt, ae.RetryAfter)
		if c.retry.OnRetry != nil {
			c.retry.OnRetry(ae.Status, wait)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(wait):
		}
	}
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	}, http.StatusOK)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts the entries (bulk shape) and returns the accepted job
// IDs, in submission order. With a retry policy, backpressure refusals
// are retried under jittered backoff: a 429 is refused before any entry
// is admitted (so the replay cannot double-submit) and a 503 means the
// service is draining and will keep refusing.
func (c *Client) Submit(ctx context.Context, entries ...jobspec.Entry) ([]int, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("api: no entries to submit")
	}
	body, err := json.Marshal(entries)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	}, http.StatusAccepted)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var sr server.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, err
	}
	return sr.Accepted, nil
}

// Jobs lists every submitted job's live status, ordered by ID.
func (c *Client) Jobs(ctx context.Context) ([]server.JobStatus, error) {
	var out []server.JobStatus
	err := c.getJSON(ctx, "/v1/jobs", &out)
	return out, err
}

// Job reads one job's live status. A missing job returns an APIError
// satisfying IsNotFound.
func (c *Client) Job(ctx context.Context, id int) (server.JobStatus, error) {
	var out server.JobStatus
	err := c.getJSON(ctx, fmt.Sprintf("/v1/jobs/%d", id), &out)
	return out, err
}

// JobTrace fetches one job's assembled causal span tree. A missing job
// returns an APIError satisfying IsNotFound; a server without tracing
// returns a 503 APIError.
func (c *Client) JobTrace(ctx context.Context, id int) (server.TraceResponse, error) {
	var out server.TraceResponse
	err := c.getJSON(ctx, fmt.Sprintf("/v1/jobs/%d/trace", id), &out)
	return out, err
}

// Stats reads the scheduler/queue summary.
func (c *Client) Stats(ctx context.Context) (server.Stats, error) {
	var out server.Stats
	err := c.getJSON(ctx, "/v1/stats", &out)
	return out, err
}

// WaitJob polls until the job reaches a terminal state (done or
// expired), the poll interval elapsing between reads. It tolerates the
// job not existing yet — a stream attached before the POST.
func (c *Client) WaitJob(ctx context.Context, id int, poll time.Duration) (server.JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err == nil && (st.State == "done" || st.State == "expired") {
			return st, nil
		}
		if err != nil && !IsNotFound(err) {
			return server.JobStatus{}, err
		}
		select {
		case <-ctx.Done():
			return server.JobStatus{}, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Message is one decoded SSE frame.
type Message struct {
	// Event is the SSE event name (the scheduler event kind, or "status"
	// for the initial job snapshot).
	Event string
	// Data is the raw JSON payload.
	Data []byte
}

// AsEvent decodes the payload as a server.Event (lifecycle and timeline
// frames).
func (m Message) AsEvent() (server.Event, error) {
	var ev server.Event
	err := json.Unmarshal(m.Data, &ev)
	return ev, err
}

// AsJobStatus decodes the payload as a server.JobStatus ("status"
// frames).
func (m Message) AsJobStatus() (server.JobStatus, error) {
	var st server.JobStatus
	err := json.Unmarshal(m.Data, &st)
	return st, err
}

// AsUtil decodes the payload as a server.UtilPoint ("timeline" frames).
func (m Message) AsUtil() (server.UtilPoint, error) {
	var p server.UtilPoint
	err := json.Unmarshal(m.Data, &p)
	return p, err
}

// Stream is one live SSE connection. Next blocks for the next frame;
// Close tears the connection down (a blocked Next returns an error once
// the response body closes, so cancel the request context or Close from
// another goroutine to unblock).
type Stream struct {
	resp *http.Response
	br   *bufio.Reader
}

func (c *Client) stream(ctx context.Context, path string) (*Stream, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return &Stream{resp: resp, br: bufio.NewReader(resp.Body)}, nil
}

// JobEvents opens the SSE stream of one job's lifecycle. Attaching
// before the job is submitted is supported; the stream waits for it.
func (c *Client) JobEvents(ctx context.Context, id int) (*Stream, error) {
	return c.stream(ctx, fmt.Sprintf("/v1/jobs/%d/events", id))
}

// Timeline opens the SSE stream of cluster utilization samples. With
// replay, recorded history is delivered before live samples.
func (c *Client) Timeline(ctx context.Context, replay bool) (*Stream, error) {
	path := "/v1/timeline"
	if !replay {
		path += "?replay=0"
	}
	return c.stream(ctx, path)
}

// Next reads frames until a complete event arrives, skipping heartbeat
// comments. It returns io.EOF when the server ends the stream.
func (s *Stream) Next() (Message, error) {
	var msg Message
	for {
		line, err := s.br.ReadString('\n')
		if err != nil {
			return Message{}, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if msg.Event != "" || len(msg.Data) > 0 {
				return msg, nil
			}
			// Blank after a comment: keep reading.
		case strings.HasPrefix(line, ":"):
			// Heartbeat comment.
		case strings.HasPrefix(line, "event:"):
			msg.Event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			if len(msg.Data) > 0 {
				msg.Data = append(msg.Data, '\n')
			}
			msg.Data = append(msg.Data, strings.TrimSpace(strings.TrimPrefix(line, "data:"))...)
		}
	}
}

// Close tears down the stream.
func (s *Stream) Close() error {
	return s.resp.Body.Close()
}
