package server_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"proteus/internal/jobspec"
	"proteus/internal/obs"
	"proteus/internal/sched"
	"proteus/internal/server"
	"proteus/internal/server/client"
	"proteus/internal/wal"
)

// TestSubmitBackpressure fills the admission backlog past MaxQueue and
// checks the refusal contract: 429, a Retry-After hint, and a retrying
// client that backs off and eventually reports the refusal.
func TestSubmitBackpressure(t *testing.T) {
	eng, mkt, brain := testHarness(t, 611)
	o := obs.NewObserver(eng.Now)
	sc, err := sched.New(eng, mkt, testConfig(brain, o))
	if err != nil {
		t.Fatal(err)
	}
	// The scheduler is never driven: submissions pile up as Pending, so
	// the backlog cannot drain and the refusals are deterministic.
	srv, err := server.New(server.Config{Scheduler: sc, Observer: o, MaxQueue: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := client.New(ts.URL, nil)
	ctx := context.Background()
	if _, err := c.Submit(ctx, testEntries()[:2]...); err != nil {
		t.Fatal(err)
	}

	// Raw refusal: status and header.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"hours": 0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}

	// Typed refusal: APIError with the hint parsed.
	_, err = c.Submit(ctx, jobspec.Entry{Hours: 0.5})
	ae, ok := err.(*client.APIError)
	if !ok || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("Submit error %v, want 429 APIError", err)
	}
	if !ae.Temporary() || ae.RetryAfter <= 0 {
		t.Fatalf("refusal not marked retryable: %+v", ae)
	}

	// Retrying client: the backlog never drains, so every attempt is
	// refused; the policy must observe each backoff and give up.
	var retries atomic.Int32
	rc := c.WithRetry(client.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		OnRetry:     func(status int, _ time.Duration) { retries.Add(1) },
	})
	if _, err := rc.Submit(ctx, jobspec.Entry{Hours: 0.5}); err == nil {
		t.Fatal("retrying Submit succeeded against a full queue")
	}
	if got := retries.Load(); got != 2 {
		t.Fatalf("%d retries observed, want 2 (3 attempts)", got)
	}
}

// TestClientRetryEventuallySucceeds drives the retry loop against a
// stub that refuses twice (with a Retry-After it must honor) and then
// accepts.
func TestClientRetryEventuallySucceeds(t *testing.T) {
	var calls atomic.Int32
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"hold on"}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"accepted":[7]}`))
	}))
	defer stub.Close()

	var waits atomic.Int32
	c := client.New(stub.URL, nil).WithRetry(client.RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Jitter:      0.5,
		OnRetry:     func(status int, _ time.Duration) { waits.Add(1) },
	})
	ids, err := c.Submit(context.Background(), jobspec.Entry{Hours: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 7 {
		t.Fatalf("accepted %v, want [7]", ids)
	}
	if calls.Load() != 3 || waits.Load() != 2 {
		t.Fatalf("%d calls, %d retries; want 3 and 2", calls.Load(), waits.Load())
	}
}

// TestSubmitDurabilityBarrier: once POST /v1/jobs returns 202, the
// submission must be recoverable from the WAL directory — even if the
// process is SIGKILLed before any graceful close. Recovering the live
// directory (no Close) stands in for the crash.
func TestSubmitDurabilityBarrier(t *testing.T) {
	dir := t.TempDir()
	wlog, err := wal.Create(dir, wal.Meta{Seed: 612}, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer wlog.Close()

	eng, mkt, brain := testHarness(t, 612)
	o := obs.NewObserver(eng.Now)
	cfg := testConfig(brain, o)
	cfg.WAL = wlog
	sc, err := sched.New(eng, mkt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Scheduler: sc, Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := client.New(ts.URL, nil)
	ids, err := c.Submit(context.Background(), testEntries()...)
	if err != nil {
		t.Fatal(err)
	}

	replay, err := wal.Recover(dir)
	if err != nil {
		t.Fatalf("recovering the live directory: %v", err)
	}
	if len(replay.Jobs) != len(ids) {
		t.Fatalf("recovered %d submissions, want %d", len(replay.Jobs), len(ids))
	}
	for i, jr := range replay.Jobs {
		if jr.ID != ids[i] {
			t.Fatalf("recovered job %d has ID %d, want %d", i, jr.ID, ids[i])
		}
	}

	// The stats surface reports the log's progress.
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.WAL == nil || st.WAL.LastSeq < uint64(len(ids))+1 || st.WAL.Submits != len(ids) {
		t.Fatalf("stats WAL %+v, want last_seq >= %d and %d submits", st.WAL, len(ids)+1, len(ids))
	}
	if st.Recovered || st.CatchingUp {
		t.Fatalf("fresh service claims recovery: %+v", st)
	}
}

// TestStatsReportRecovery: a service built by Recover advertises its
// provenance on /v1/stats.
func TestStatsReportRecovery(t *testing.T) {
	dir := t.TempDir()
	wlog, err := wal.Create(dir, wal.Meta{Seed: 613}, wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, mkt, brain := testHarness(t, 613)
	cfg := testConfig(brain, nil)
	cfg.WAL = wlog
	sc, err := sched.New(eng, mkt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := jobspec.Jobs(testEntries(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := sc.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}

	log2, replay, err := wal.Open(dir, wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	eng2, mkt2, brain2 := testHarness(t, 613)
	rs, err := sched.Recover(eng2, mkt2, testConfig(brain2, nil), replay, log2)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Scheduler: rs})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st, err := client.New(ts.URL, nil).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Recovered || st.RecoveredJobs != len(jobs) {
		t.Fatalf("stats %+v, want recovered with %d jobs", st, len(jobs))
	}
	if st.Jobs != len(jobs) {
		t.Fatalf("stats report %d jobs, want %d", st.Jobs, len(jobs))
	}
	if st.WAL == nil || st.WAL.LastSeq == 0 {
		t.Fatalf("stats WAL %+v, want the reopened log's counters", st.WAL)
	}
}
