// Package server is the HTTP control plane in front of the multi-tenant
// scheduler: it turns the batch simulator into a long-running service.
// Jobs arrive in the shared jobspec JSON shape over POST /v1/jobs
// (single object or array), status is served at GET /v1/jobs and
// GET /v1/jobs/{id}, per-job state transitions and the cluster
// utilization timeline stream over SSE, and GET /v1/stats summarizes the
// queue, footprint, and bill. The handlers mount on the same mux as the
// obs registry's /metrics and pprof endpoints, so one listener carries
// the whole operational surface.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"proteus/internal/jobspec"
	"proteus/internal/obs"
	"proteus/internal/sched"
)

// maxBodyBytes bounds a job submission; a full day of tenants is a few
// KB, so 1 MiB is generous.
const maxBodyBytes = 1 << 20

// Config assembles a Server.
type Config struct {
	// Scheduler is the control plane's backend; required. The caller owns
	// driving it (Scheduler.Serve) — the Server only submits and observes.
	Scheduler *sched.Scheduler
	// Observer supplies the api_* request metrics, the trace tree behind
	// GET /v1/jobs/{id}/trace, and, when Mux is nil, the
	// /metrics + /debug/flight + pprof mux to mount on. Nil disables
	// instrumentation.
	Observer *obs.Observer
	// Mux is the base mux to mount the v1 routes on. Nil uses
	// Observer.Mux() (the /metrics + /debug/flight + pprof mux) or, with
	// no Observer either, a fresh mux.
	Mux *http.ServeMux
	// EventBuffer is the per-SSE-connection event buffer handed to
	// Scheduler.Subscribe; zero picks the subscription default.
	EventBuffer int
	// MaxQueue caps jobs waiting for admission (pending + queued). A
	// submission that would push the backlog past the cap is refused
	// with 429 and a Retry-After hint instead of growing the queue
	// without bound. Zero means unbounded.
	MaxQueue int
}

// Server is the HTTP control plane. It is an http.Handler; wrap it in an
// http.Server to listen.
type Server struct {
	sched    *sched.Scheduler
	o        *obs.Observer
	mux      *http.ServeMux
	hub      *Hub
	evBuf    int
	maxQueue int
	started  time.Time

	// mu serializes ID assignment across concurrent submissions; nextID
	// tracks the high-water mark beyond what the scheduler has seen.
	mu     sync.Mutex
	nextID int
}

// New builds the control plane and mounts its routes.
func New(cfg Config) (*Server, error) {
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("server: Config.Scheduler is required")
	}
	mux := cfg.Mux
	if mux == nil {
		if cfg.Observer != nil {
			mux = cfg.Observer.Mux()
		} else {
			mux = http.NewServeMux()
		}
	}
	s := &Server{
		sched:    cfg.Scheduler,
		o:        cfg.Observer,
		mux:      mux,
		evBuf:    cfg.EventBuffer,
		maxQueue: cfg.MaxQueue,
		started:  time.Now(),
		nextID:   cfg.Scheduler.NextJobID(),
	}
	// One scheduler subscription feeds every SSE connection through the
	// hub: each event is encoded once and fanned out, instead of each
	// connection paying its own subscription and json.Marshal. The hub
	// buffer is sized up from the per-connection buffer — it absorbs the
	// full event stream, not one viewer's slice of it.
	hubBuf := cfg.EventBuffer
	if hubBuf < hubSubBuffer {
		hubBuf = hubSubBuffer
	}
	var reg *obs.Registry
	if cfg.Observer != nil {
		reg = cfg.Observer.Reg()
	}
	s.hub = NewHub(cfg.Scheduler.Subscribe(hubBuf), reg)
	s.routes()
	return s, nil
}

// hubSubBuffer is the floor for the hub's scheduler subscription: deep
// enough that the encode-and-fan-out pump riding one GC pause does not
// cost the whole service events.
const hubSubBuffer = 4096

// Close detaches the server from the scheduler's event stream and ends
// every open SSE connection. The server stops streaming but keeps
// answering request/response routes; call it on shutdown.
func (s *Server) Close() {
	s.hub.Close()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) routes() {
	s.handle("POST /v1/jobs", "submit", s.handleSubmit)
	s.handle("GET /v1/jobs", "jobs", s.handleJobs)
	s.handle("GET /v1/jobs/{id}", "job", s.handleJob)
	s.handle("GET /v1/jobs/{id}/trace", "job_trace", s.handleJobTrace)
	s.handle("GET /v1/jobs/{id}/events", "job_events", s.handleJobEvents)
	s.handle("GET /v1/timeline", "timeline", s.handleTimeline)
	s.handle("GET /v1/stats", "stats", s.handleStats)
}

func (s *Server) handle(pattern, route string, h http.HandlerFunc) {
	s.mux.Handle(pattern, s.instrument(route, h))
}

func (s *Server) reg() *obs.Registry {
	if s.o == nil {
		return nil
	}
	return s.o.Reg()
}

// statusRecorder captures the response code for request metrics while
// passing Flush through so SSE handlers still stream. Handlers that know
// which trace their request served set exemplar so the latency histogram
// links the observation to that trace.
type statusRecorder struct {
	http.ResponseWriter
	code     int
	exemplar uint64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush implements http.Flusher when the underlying writer does.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the api_* request metrics: a
// route/method/code counter, a wall-clock latency histogram, and an
// in-flight gauge. Latency for SSE routes measures the stream lifetime,
// which is what an operator debugging hung streams wants.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reg := s.reg()
		inflight := reg.Gauge("proteus_api_inflight_requests",
			"control-plane requests currently being served")
		inflight.Add(1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			elapsed := time.Since(start).Seconds()
			inflight.Add(-1)
			reg.Counter("proteus_api_requests_total",
				"control-plane requests served",
				obs.L("route", route),
				obs.L("method", r.Method),
				obs.L("code", strconv.Itoa(rec.code))).Inc()
			reg.Histogram("proteus_api_request_seconds",
				"control-plane request latency (wall seconds)", nil,
				obs.L("route", route)).ObserveEx(elapsed, rec.exemplar)
		}()
		h(rec, r)
	})
}

// jsonScratch pairs a reusable buffer with an encoder bound to it, so a
// pooled writeJSON call allocates neither. Encoding to the buffer before
// touching the ResponseWriter also means an encode error can still
// produce a clean 500 instead of a half-written body.
type jsonScratch struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonPool = sync.Pool{New: func() any {
	s := &jsonScratch{}
	s.enc = json.NewEncoder(&s.buf)
	s.enc.SetIndent("", "  ")
	return s
}}

func writeJSON(w http.ResponseWriter, code int, v any) {
	js := jsonPool.Get().(*jsonScratch)
	js.buf.Reset()
	if err := js.enc.Encode(v); err != nil {
		jsonPool.Put(js)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(js.buf.Bytes())
	jsonPool.Put(js)
}

func writeError(w http.ResponseWriter, code int, err error) {
	resp := ErrorResponse{Error: err.Error()}
	var verr jobspec.ValidationError
	if errors.As(err, &verr) {
		resp.Fields = verr
	}
	writeJSON(w, code, resp)
}

// retryAfterSeconds is the hint sent with backpressure refusals (429
// queue-full, 503 draining): long enough to let the scheduler drain a
// decision cycle, short enough that a loadgen ramp recovers quickly.
const retryAfterSeconds = 1

// refuse writes a backpressure reply: the Retry-After hint plus a
// counter so operators can see refusals per cause on /metrics.
func (s *Server) refuse(w http.ResponseWriter, code int, cause string, accepted []int, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	s.reg().Counter("proteus_api_backpressure_total",
		"submissions refused to protect the service",
		obs.L("cause", cause)).Inc()
	writeJSON(w, code, SubmitResponse{Accepted: accepted, Error: err.Error()})
}

// handleSubmit accepts one entry or an array in the jobspec shape.
// Responses: 202 with the accepted IDs — written only after the WAL (if
// any) has made the submissions durable — 400 with field-level errors
// on a bad submission, 409 on a duplicate job ID, 429 when the
// admission backlog is full, 503 while draining. 429 and 503 carry a
// Retry-After hint.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	entries, err := jobspec.Decode(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.maxQueue > 0 {
		st := s.sched.Stats()
		if backlog := st.Pending + st.Queued; backlog+len(entries) > s.maxQueue {
			s.refuse(w, http.StatusTooManyRequests, "queue_full", []int{},
				fmt.Errorf("admission backlog full (%d waiting, cap %d)", backlog, s.maxQueue))
			return
		}
	}
	// Serialize ID assignment: concurrent submissions must not hand the
	// same auto-ID to two jobs between scheduler Submit calls. The lock
	// is released before the WAL sync so concurrent submitters keep
	// appending while this batch commits (group commit).
	s.mu.Lock()
	next := s.sched.NextJobID()
	if s.nextID > next {
		next = s.nextID
	}
	jobs, err := jobspec.Jobs(entries, next)
	if err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	accepted := make([]int, 0, len(jobs))
	for _, j := range jobs {
		if err := s.sched.Submit(j); err != nil {
			s.mu.Unlock()
			msg := err.Error()
			switch {
			case strings.Contains(msg, "duplicate job ID"):
				writeJSON(w, http.StatusConflict, SubmitResponse{Accepted: accepted, Error: msg})
			case strings.Contains(msg, "draining") || strings.Contains(msg, "finished"):
				s.refuse(w, http.StatusServiceUnavailable, "draining", accepted, err)
			default:
				writeJSON(w, http.StatusBadRequest, SubmitResponse{Accepted: accepted, Error: msg})
			}
			return
		}
		accepted = append(accepted, j.ID)
		if j.ID >= s.nextID {
			s.nextID = j.ID + 1
		}
	}
	s.mu.Unlock()
	// Durability barrier: the 202 is a promise that a crash right after
	// this response cannot lose the submission. One fsync here covers
	// every record appended so far, so N concurrent submitters share a
	// handful of syncs rather than paying one each.
	if err := s.sched.SyncWAL(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// Exemplar the submit latency with the first accepted job's trace, so
	// the histogram's buckets link to concrete causal trees.
	if rec, ok := w.(*statusRecorder); ok && len(accepted) > 0 {
		if st, found := s.sched.Status(accepted[0]); found {
			rec.exemplar = st.TraceID
		}
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{Accepted: accepted})
}

// handleJobTrace returns the job's assembled causal trace tree: every
// recorded span of the trace — finished ones plus snapshots of any still
// open — rooted at the job span. 404 for unknown jobs, 503 when the
// server runs without a tracer.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, ok := s.sched.Status(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %d", id))
		return
	}
	tr := s.o.Trace()
	if tr == nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("tracing disabled"))
		return
	}
	spans := tr.TraceSpans(st.TraceID)
	writeJSON(w, http.StatusOK, traceResponseWire(id, st.TraceID, spans))
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	snap := s.sched.Snapshot()
	out := make([]JobStatus, 0, len(snap))
	for _, st := range snap {
		out = append(out, jobStatusWire(st))
	}
	writeJSON(w, http.StatusOK, out)
}

func jobID(r *http.Request) (int, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 {
		return 0, fmt.Errorf("job ID must be a non-negative integer, got %q", r.PathValue("id"))
	}
	return id, nil
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, ok := s.sched.Status(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %d", id))
		return
	}
	writeJSON(w, http.StatusOK, jobStatusWire(st))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	out := statsWire(s.sched.Stats(), time.Since(s.started))
	if ws, ok := s.sched.WALStats(); ok {
		out.WAL = &ws
	}
	writeJSON(w, http.StatusOK, out)
}

// sseWriter frames SSE messages over a flushing response writer. The
// frame buffer and its encoder live for the connection, so a stream
// writes thousands of frames on one allocation of scratch.
type sseWriter struct {
	w   http.ResponseWriter
	f   http.Flusher
	buf bytes.Buffer
	enc *json.Encoder
}

func newSSE(w http.ResponseWriter) (*sseWriter, bool) {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	s := &sseWriter{w: w, f: f}
	s.enc = json.NewEncoder(&s.buf)
	return s, true
}

// event encodes v into a complete SSE frame in the connection's scratch
// buffer and writes it in one call. Hub-driven frames skip this and go
// through writeFrame with bytes encoded once for all connections.
func (s *sseWriter) event(name string, v any) error {
	s.buf.Reset()
	s.buf.WriteString("event: ")
	s.buf.WriteString(name)
	s.buf.WriteString("\ndata: ")
	if err := s.enc.Encode(v); err != nil {
		return err
	}
	// Encode appended the JSON's newline; one more closes the frame.
	s.buf.WriteByte('\n')
	return s.writeFrame(s.buf.Bytes())
}

// writeFrame writes pre-framed SSE bytes and flushes.
func (s *sseWriter) writeFrame(frame []byte) error {
	if _, err := s.w.Write(frame); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}

func (s *sseWriter) comment(text string) error {
	s.buf.Reset()
	s.buf.WriteString(": ")
	s.buf.WriteString(text)
	s.buf.WriteString("\n\n")
	return s.writeFrame(s.buf.Bytes())
}

// heartbeatEvery keeps idle SSE connections from being reaped by
// intermediaries; comments are invisible to event consumers.
const heartbeatEvery = 15 * time.Second

// handleJobEvents streams one job's lifecycle over SSE: an initial
// "status" snapshot if the job exists, then live transitions (queued,
// admitted, running, done, expired). The stream ends after a terminal
// event. Subscribing to a job ID that has not been submitted yet is
// allowed — the stream waits, so a client can attach before POSTing and
// never miss a transition.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Attach to the hub before snapshotting so no transition falls in
	// between; frames arrive pre-encoded, filtered to this job.
	conn := s.hub.Job(id, s.evBuf)
	if conn == nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("event stream shut down"))
		return
	}
	defer s.hub.Detach(conn)
	sse, ok := newSSE(w)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("response writer cannot stream"))
		return
	}
	if st, exists := s.sched.Status(id); exists {
		if sse.event("status", jobStatusWire(st)) != nil {
			return
		}
		if st.State == sched.Done || st.State == sched.Expired {
			return
		}
	}
	heartbeat := time.NewTicker(heartbeatEvery)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case fr, open := <-conn.C:
			if !open {
				return
			}
			if sse.writeFrame(fr.Data) != nil {
				return
			}
			if fr.Terminal {
				return
			}
		case <-heartbeat.C:
			if sse.comment("ping") != nil {
				return
			}
		}
	}
}

// handleTimeline streams cluster utilization samples over SSE. By
// default the recorded timeline replays first so a late viewer gets
// history; ?replay=0 starts from live only. The scheduler coalesces
// same-instant samples before they reach either path, so the replayed
// history serves the same points, in the same order, that live viewers
// received.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	replay := r.URL.Query().Get("replay") != "0"
	// Attach before replaying so no live sample falls in the gap.
	conn := s.hub.Timeline(s.evBuf)
	if conn == nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("event stream shut down"))
		return
	}
	defer s.hub.Detach(conn)
	sse, ok := newSSE(w)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("response writer cannot stream"))
		return
	}
	// Replayed points and the live frames can overlap: the connection
	// attached first (no gap), so live frames at or before the last
	// replayed sample are duplicates and get skipped. Two samples at the
	// same virtual instant are indistinguishable, so one of an
	// exact-tie pair may be dropped — harmless for a utilization feed.
	var lastReplayed time.Duration = -1
	if replay {
		for _, p := range s.sched.Timeline() {
			if sse.event(sched.EventTimeline, utilWire(p)) != nil {
				return
			}
			lastReplayed = p.At
		}
	}
	heartbeat := time.NewTicker(heartbeatEvery)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case fr, open := <-conn.C:
			if !open {
				return
			}
			if fr.At <= lastReplayed {
				continue
			}
			if sse.writeFrame(fr.Data) != nil {
				return
			}
		case <-heartbeat.C:
			if sse.comment("ping") != nil {
				return
			}
		}
	}
}
