package server_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"proteus/internal/bidbrain"
	"proteus/internal/jobspec"
	"proteus/internal/market"
	"proteus/internal/obs"
	"proteus/internal/sched"
	"proteus/internal/server"
	"proteus/internal/server/client"
	"proteus/internal/sim"
	"proteus/internal/trace"
)

// testHarness builds a brain trained on a synthetic window plus an
// evaluation market on a disjoint trace — the same split the sched
// tests use, sized down for speed. Both halves of the bills-parity test
// call this with the same seed, so the two runs see identical markets.
func testHarness(t testing.TB, seed int64) (*sim.Engine, *market.Market, *bidbrain.Brain) {
	t.Helper()
	prices := market.CatalogPrices(market.DefaultCatalog())
	hist := trace.GenerateSet("train", 7*24*time.Hour, prices, seed+1000)
	betas := make(map[string]*trace.BetaTable)
	for name := range prices {
		tr, _ := hist.Get(name)
		betas[name] = trace.BuildBetaTable(tr, trace.DefaultDeltas(), 150, seed)
	}
	brain, err := bidbrain.New(bidbrain.DefaultParams(), betas, nil)
	if err != nil {
		t.Fatal(err)
	}
	eval := trace.GenerateSet("eval", 7*24*time.Hour, prices, seed)
	eng := sim.NewEngine()
	mkt, err := market.New(eng, market.Config{
		Catalog: market.DefaultCatalog(),
		Traces:  eval,
		Warning: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, mkt, brain
}

func testConfig(brain *bidbrain.Brain, o *obs.Observer) sched.Config {
	return sched.Config{
		Brain:         brain,
		ReliableType:  "c4.xlarge",
		ReliableCount: 4,
		MaxSpotCores:  512,
		ChunkCores:    128,
		Observer:      o,
	}
}

// testEntries is the shared workload: staggered arrivals, mixed
// priorities.
func testEntries() []jobspec.Entry {
	return []jobspec.Entry{
		{Name: "tenant-a", Hours: 0.5, Priority: 2},
		{Name: "tenant-b", Hours: 0.5, ArrivalMinutes: 10},
		{Name: "tenant-c", Hours: 0.5, ArrivalMinutes: 20, Priority: 1},
	}
}

// TestServeMatchesBatchBills is the end-to-end acceptance path: jobs
// submitted through the typed client against a Serve-driven scheduler
// produce SSE transitions in lifecycle order, and the final accounting
// is identical to a direct batch Run of the same jobs on the same seed.
func TestServeMatchesBatchBills(t *testing.T) {
	const seed = 412

	// Direct batch run: same entries converted the same way.
	jobs, err := jobspec.Jobs(testEntries(), 0)
	if err != nil {
		t.Fatal(err)
	}
	engA, mktA, brainA := testHarness(t, seed)
	direct, err := sched.New(engA, mktA, testConfig(brainA, nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := direct.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	want, err := direct.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Service run: same seed, jobs arrive over HTTP.
	engB, mktB, brainB := testHarness(t, seed)
	o := obs.NewObserver(engB.Now)
	sc, err := sched.New(engB, mktB, testConfig(brainB, o))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Scheduler: sc, Observer: o, EventBuffer: 8192})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resCh := make(chan *sched.Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := sc.Serve(ctx, sched.ServeConfig{}) // unpaced
		resCh <- res
		errCh <- err
	}()

	c := client.New(ts.URL, nil)

	// Attach the event stream for job 0 before submitting, so no
	// transition can be missed.
	streamCtx, streamCancel := context.WithTimeout(context.Background(), time.Minute)
	defer streamCancel()
	stream, err := c.JobEvents(streamCtx, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	ids, err := c.Submit(context.Background(), testEntries()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 1 || ids[2] != 2 {
		t.Fatalf("accepted IDs %v, want [0 1 2]", ids)
	}

	// The stream must deliver the full lifecycle in order and then end.
	var kinds []string
	for {
		msg, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stream: %v (kinds so far %v)", err, kinds)
		}
		kinds = append(kinds, msg.Event)
		if msg.Event != "status" {
			ev, err := msg.AsEvent()
			if err != nil {
				t.Fatal(err)
			}
			if ev.JobID == nil || *ev.JobID != 0 {
				t.Fatalf("event for wrong job: %+v", ev)
			}
		}
	}
	wantKinds := []string{"queued", "admitted", "running", "done"}
	if strings.Join(kinds, ",") != strings.Join(wantKinds, ",") {
		t.Fatalf("SSE kinds %v, want %v", kinds, wantKinds)
	}

	// All jobs reach done; status and stats agree.
	waitCtx, waitCancel := context.WithTimeout(context.Background(), time.Minute)
	defer waitCancel()
	for _, id := range ids {
		st, err := c.WaitJob(waitCtx, id, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "done" {
			t.Fatalf("job %d state %q", id, st.State)
		}
		// Accrual is summed piecewise; allow float round-off at the target.
		if st.Work < st.TargetWork*0.999 {
			t.Fatalf("job %d work %.3f below target %.3f", id, st.Work, st.TargetWork)
		}
	}
	all, err := c.Jobs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("%d jobs listed, want 3", len(all))
	}
	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Done != 3 || stats.Jobs != 3 {
		t.Fatalf("stats %+v, want 3 done of 3", stats)
	}
	if stats.CostSoFar <= 0 {
		t.Fatalf("stats cost %.4f, want positive", stats.CostSoFar)
	}

	// Timeline replay delivers recorded utilization history.
	tlCtx, tlCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer tlCancel()
	tl, err := c.Timeline(tlCtx, true)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := tl.Next()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Event != "timeline" {
		t.Fatalf("timeline frame event %q", msg.Event)
	}
	if _, err := msg.AsUtil(); err != nil {
		t.Fatal(err)
	}
	tl.Close()

	// The shared mux carries /metrics with the api_* families.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, fam := range []string{
		"proteus_api_requests_total",
		"proteus_api_request_seconds",
		"proteus_api_inflight_requests",
	} {
		if !strings.Contains(string(body), fam) {
			t.Fatalf("/metrics lacks %s", fam)
		}
	}

	// Drain and compare bills with the batch run: the accounting must be
	// identical, not merely close.
	cancel()
	got := <-resCh
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if got.TotalCost != want.TotalCost {
		t.Fatalf("serve bill $%.6f != batch bill $%.6f", got.TotalCost, want.TotalCost)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("serve makespan %v != batch %v", got.Makespan, want.Makespan)
	}
	if len(got.Jobs) != len(want.Jobs) {
		t.Fatalf("serve %d jobs != batch %d", len(got.Jobs), len(want.Jobs))
	}
	for i := range got.Jobs {
		g, w := got.Jobs[i], want.Jobs[i]
		if g.Cost != w.Cost || g.Finished != w.Finished || g.State != w.State {
			t.Fatalf("job %d: serve {cost %.6f finished %v %v} != batch {cost %.6f finished %v %v}",
				g.Job.ID, g.Cost, g.Finished, g.State, w.Cost, w.Finished, w.State)
		}
	}
}

// TestAPIErrors exercises the failure surface without driving the
// scheduler: field-level 400s, duplicate-ID 409s, and 404s.
func TestAPIErrors(t *testing.T) {
	eng, mkt, brain := testHarness(t, 97)
	sc, err := sched.New(eng, mkt, testConfig(brain, nil))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Scheduler: sc})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL, nil)
	ctx := context.Background()

	// Invalid submission: every bad field reported with its index.
	_, err = c.Submit(ctx,
		jobspec.Entry{Hours: 0},
		jobspec.Entry{Hours: 1, Priority: 999},
	)
	apiErr, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("error %T (%v), want *client.APIError", err, err)
	}
	if apiErr.Status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", apiErr.Status)
	}
	if len(apiErr.Fields) != 2 ||
		apiErr.Fields[0].Field != "hours" || apiErr.Fields[0].Index != 0 ||
		apiErr.Fields[1].Field != "priority" || apiErr.Fields[1].Index != 1 {
		t.Fatalf("fields %+v", apiErr.Fields)
	}

	// Valid submission, then a duplicate explicit ID conflicts.
	five := 5
	if _, err := c.Submit(ctx, jobspec.Entry{ID: &five, Hours: 1}); err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(ctx, jobspec.Entry{ID: &five, Hours: 1})
	apiErr, ok = err.(*client.APIError)
	if !ok || apiErr.Status != http.StatusConflict {
		t.Fatalf("duplicate ID: %v, want 409", err)
	}

	// Auto-IDs skip past explicit ones across submissions.
	ids, err := c.Submit(ctx, jobspec.Entry{Hours: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 6 {
		t.Fatalf("auto ID %v, want [6]", ids)
	}

	// Unknown and malformed job IDs.
	if _, err := c.Job(ctx, 99); !client.IsNotFound(err) {
		t.Fatalf("missing job: %v, want 404", err)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad ID status %d, want 400", resp.StatusCode)
	}

	// Pre-start listing still works.
	all, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0].ID != 5 || all[1].ID != 6 {
		t.Fatalf("jobs %+v", all)
	}
	if all[0].State != "pending" {
		t.Fatalf("pre-start state %q", all[0].State)
	}
}

// TestTraceEndpoint is the e2e acceptance check for causal tracing over
// HTTP: each job's GET /v1/jobs/{id}/trace returns exactly one rooted
// tree whose parent links all resolve, covering the full lifecycle
// (submit through done), fully closed once the scheduler drains, with
// zero drop counters in /v1/stats.
func TestTraceEndpoint(t *testing.T) {
	eng, mkt, brain := testHarness(t, 733)
	o := obs.NewObserver(eng.Now)
	sc, err := sched.New(eng, mkt, testConfig(brain, o))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Scheduler: sc, Observer: o, EventBuffer: 8192})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resCh := make(chan *sched.Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := sc.Serve(ctx, sched.ServeConfig{}) // unpaced
		resCh <- res
		errCh <- err
	}()

	c := client.New(ts.URL, nil)
	ids, err := c.Submit(context.Background(), testEntries()...)
	if err != nil {
		t.Fatal(err)
	}
	waitCtx, waitCancel := context.WithTimeout(context.Background(), time.Minute)
	defer waitCancel()
	statuses := make(map[int]server.JobStatus, len(ids))
	for _, id := range ids {
		st, err := c.WaitJob(waitCtx, id, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "done" {
			t.Fatalf("job %d state %q", id, st.State)
		}
		statuses[id] = st
	}

	// Drain before reading trees so every root span has closed; the
	// httptest server outlives the scheduler loop.
	cancel()
	<-resCh
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	for _, id := range ids {
		tr, err := c.JobTrace(context.Background(), id)
		if err != nil {
			t.Fatalf("trace %d: %v", id, err)
		}
		if tr.JobID != id {
			t.Fatalf("trace job_id %d, want %d", tr.JobID, id)
		}
		if tr.TraceID == "" || tr.TraceID != statuses[id].TraceID {
			t.Fatalf("trace_id %q does not match job status %q", tr.TraceID, statuses[id].TraceID)
		}
		if len(tr.Roots) != 1 {
			t.Fatalf("job %d has %d roots, want 1 (orphaned subtrees mean broken parent links)", id, len(tr.Roots))
		}
		root := tr.Roots[0]
		if root.Component != "sched" || root.Name != "job" || root.ParentID != "" {
			t.Fatalf("job %d root = %s/%s parent %q", id, root.Component, root.Name, root.ParentID)
		}
		walked := 0
		names := map[string]bool{}
		var walk func(sp server.TraceSpan, parentID string)
		walk = func(sp server.TraceSpan, parentID string) {
			walked++
			names[sp.Name] = true
			if sp.Open {
				t.Fatalf("job %d span %s/%s still open after drain", id, sp.Component, sp.Name)
			}
			if sp.ParentID != parentID {
				t.Fatalf("job %d span %s parent_id %q, want %q", id, sp.SpanID, sp.ParentID, parentID)
			}
			for _, ch := range sp.Children {
				walk(ch, sp.SpanID)
			}
		}
		walk(root, "")
		if walked != tr.Spans {
			t.Fatalf("job %d tree visits %d spans, response says %d", id, walked, tr.Spans)
		}
		for _, want := range []string{"submit", "queued", "admitted", "running", "lease", "done"} {
			if !names[want] {
				t.Fatalf("job %d tree lacks %q span (has %v)", id, want, names)
			}
		}
	}

	if _, err := c.JobTrace(context.Background(), 99); !client.IsNotFound(err) {
		t.Fatalf("missing job trace: %v, want 404", err)
	}
	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.EventsDropped != 0 || stats.SpansDropped != 0 {
		t.Fatalf("drop counters events=%d spans=%d, want 0", stats.EventsDropped, stats.SpansDropped)
	}
}
