// This file is the SSE fan-out hub: one goroutine drains the
// scheduler's event stream, encodes each event into its SSE wire frame
// exactly once, and hands the pre-framed bytes to every interested
// connection without blocking — a slow consumer drops frames (counted
// on /metrics) instead of backing up the stream, the other viewers, or
// the scheduler's decision tick. The per-connection json.Marshal the
// handlers used to pay is gone: N watchers of one busy stream cost one
// encode per event, not N.

package server

import (
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"proteus/internal/obs"
	"proteus/internal/sched"
)

// Frame is one pre-encoded SSE message: Data is the complete
// "event: …\ndata: …\n\n" byte frame, shared read-only between every
// connection that receives it.
type Frame struct {
	// Data is the wire bytes; connections must not mutate them.
	Data []byte
	// At is the event's virtual instant (timeline replay dedup).
	At time.Duration
	// Terminal marks a job lifecycle stream's final event (done or
	// expired); the connection closes after writing it.
	Terminal bool
}

// HubConn is one connection's subscription to the hub. Frames arrive on
// C in dispatch order; when the buffer is full the hub drops the frame
// for this connection only. C closes when the hub shuts down.
type HubConn struct {
	C <-chan Frame

	ch      chan Frame
	jobID   int  // job lifecycle filter; timeline conns use wantTL
	wantTL  bool // timeline filter
	dropped atomic.Int64
}

// hubConnBuffer is the default per-connection frame buffer: deep enough
// to ride out a flushing stall, small enough that an abandoned
// connection holds a few KB of pointers, not the event history.
const hubConnBuffer = 256

// Hub fans the scheduler event stream out to SSE connections. Built
// attached (NewHub with a subscription: a pump goroutine drains it) or
// detached (nil subscription: the caller drives Dispatch directly —
// tests and benchmarks).
type Hub struct {
	reg *obs.Registry
	sub *sched.Subscription

	mu     sync.Mutex
	conns  map[*HubConn]struct{}
	closed bool
	done   chan struct{}

	// Encoding scratch, used only by the dispatch goroutine: one buffer
	// and encoder for the hub's lifetime, and a wire struct whose
	// pointer fields target hub-owned storage so a dispatch allocates
	// the owned frame copy and nothing else.
	buf   bytes.Buffer
	enc   *json.Encoder
	wire  Event
	jobID int
	util  UtilPoint
}

// NewHub builds a hub. sub, when non-nil, is drained by a pump goroutine
// until it closes (the hub owns it from here; Close closes it). reg,
// when non-nil, receives the proteus_api_sse_* fan-out metrics.
func NewHub(sub *sched.Subscription, reg *obs.Registry) *Hub {
	h := &Hub{
		reg:   reg,
		sub:   sub,
		conns: make(map[*HubConn]struct{}),
		done:  make(chan struct{}),
	}
	h.enc = json.NewEncoder(&h.buf)
	if sub != nil {
		go h.pump()
	} else {
		close(h.done)
	}
	return h
}

// maxDispatchBatch caps how many queued events one pump iteration
// drains: enough to swallow a rebalance burst, small enough that the
// batch scratch stays cache-resident.
const maxDispatchBatch = 64

func (h *Hub) pump() {
	defer close(h.done)
	batch := make([]sched.Event, 0, maxDispatchBatch)
	for ev := range h.sub.C {
		// Opportunistic batching: drain whatever the scheduler already
		// queued so a burst dispatches as one walk over the connections
		// (and consecutive timeline samples as one pre-framed write)
		// instead of one per event. An idle stream still dispatches
		// every event immediately — the drain never waits.
		batch = append(batch[:0], ev)
	drain:
		for len(batch) < maxDispatchBatch {
			select {
			case ev2, ok := <-h.sub.C:
				if !ok {
					h.DispatchBatch(batch)
					h.closeConns()
					return
				}
				batch = append(batch, ev2)
			default:
				break drain
			}
		}
		h.DispatchBatch(batch)
	}
	// Subscription closed under the scheduler: shut the connections down
	// so their streams end instead of idling on heartbeats.
	h.closeConns()
}

// Close shuts the hub down: the scheduler subscription closes, the pump
// drains, and every connection's channel closes. Idempotent.
func (h *Hub) Close() {
	if h.sub != nil {
		h.sub.Close()
		<-h.done
	}
	h.closeConns()
}

func (h *Hub) closeConns() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for c := range h.conns {
		close(c.ch)
		delete(h.conns, c)
	}
}

// Job attaches a connection interested in one job's lifecycle events.
// buffer <= 0 selects the default. Returns nil when the hub is closed.
func (h *Hub) Job(id, buffer int) *HubConn {
	return h.attach(&HubConn{jobID: id}, buffer)
}

// Timeline attaches a connection interested in utilization samples.
func (h *Hub) Timeline(buffer int) *HubConn {
	return h.attach(&HubConn{wantTL: true, jobID: -1}, buffer)
}

func (h *Hub) attach(c *HubConn, buffer int) *HubConn {
	if buffer <= 0 {
		buffer = hubConnBuffer
	}
	c.ch = make(chan Frame, buffer)
	c.C = c.ch
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	h.conns[c] = struct{}{}
	return c
}

// Detach removes the connection; its channel closes. Safe on nil conns
// and after Close.
func (h *Hub) Detach(c *HubConn) {
	if c == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.conns[c]; !ok {
		return
	}
	delete(h.conns, c)
	close(c.ch)
}

// Dropped reports frames this connection lost to a full buffer.
func (c *HubConn) Dropped() int {
	if c == nil {
		return 0
	}
	return int(c.dropped.Load())
}

// DispatchBatch dispatches a burst of events in order, folding each run
// of consecutive timeline samples into a single pre-framed write per
// connection. SSE is a byte stream — a receiver parses N concatenated
// frames in one chunk exactly as it parses N chunks — so batching
// changes only the cost: one encode pass, one channel send, and one
// buffer slot per run instead of per sample.
func (h *Hub) DispatchBatch(evs []sched.Event) {
	for i := 0; i < len(evs); {
		if evs[i].Kind != sched.EventTimeline {
			h.Dispatch(evs[i])
			i++
			continue
		}
		j := i + 1
		for j < len(evs) && evs[j].Kind == sched.EventTimeline {
			j++
		}
		h.dispatchTimeline(evs[i:j])
		i = j
	}
}

// dispatchTimeline fans a run of timeline samples out as one frame
// holding their concatenated wire frames. The frame's At is the last
// sample's instant: the replay-dedup cursor skips the whole frame only
// when every sample in it was already replayed (the scheduler emits a
// point exactly once, so a frame straddling the replay boundary — a
// harmless duplicate point for that one viewer — needs a race to
// produce).
func (h *Hub) dispatchTimeline(evs []sched.Event) {
	h.mu.Lock()
	interested := 0
	for c := range h.conns {
		if c.wantTL {
			interested++
		}
	}
	if interested == 0 {
		h.mu.Unlock()
		return
	}
	h.buf.Reset()
	n := 0
	var lastAt time.Duration
	for i := range evs {
		if evs[i].Util == nil {
			continue // nothing to plot; the old per-conn loop skipped these too
		}
		h.buf.WriteString("event: ")
		h.buf.WriteString(sched.EventTimeline)
		h.buf.WriteString("\ndata: ")
		h.util = utilWire(*evs[i].Util)
		if h.enc.Encode(&h.util) != nil {
			h.buf.WriteString("{}\n")
		}
		h.buf.WriteByte('\n')
		lastAt = evs[i].Util.At
		n++
	}
	if n == 0 {
		h.mu.Unlock()
		return
	}
	fr := Frame{At: lastAt, Data: append([]byte(nil), h.buf.Bytes()...)}
	dropped := 0
	for c := range h.conns {
		if c.wantTL {
			select {
			case c.ch <- fr:
			default:
				c.dropped.Add(1)
				dropped++
			}
		}
	}
	h.mu.Unlock()
	if dropped > 0 {
		h.reg.Counter("proteus_api_sse_dropped_total",
			"SSE frames dropped on slow consumers").Add(float64(dropped))
	}
}

// Dispatch encodes the event once and fans the frame out to every
// interested connection, never blocking: a full connection buffer
// increments the drop counters and moves on, so one stalled viewer
// cannot delay the stream, the other viewers, or — transitively — the
// scheduler's decision loop. Called from the pump goroutine (or the
// owner of a detached hub); not safe for concurrent Dispatch calls.
func (h *Hub) Dispatch(ev sched.Event) {
	timeline := ev.Kind == sched.EventTimeline
	if timeline && ev.Util == nil {
		return // nothing to plot; the old per-conn loop skipped these too
	}
	h.mu.Lock()
	interested := 0
	for c := range h.conns {
		if (timeline && c.wantTL) || (!timeline && !c.wantTL && c.jobID == ev.JobID) {
			interested++
		}
	}
	if interested == 0 {
		h.mu.Unlock()
		return
	}
	fr := Frame{At: ev.At, Data: h.encodeFrame(ev)}
	if timeline {
		// Dedup against replayed history keys on the sample's instant.
		fr.At = ev.Util.At
	} else {
		fr.Terminal = ev.Kind == sched.EventDone || ev.Kind == sched.EventExpired
	}
	dropped := 0
	for c := range h.conns {
		if (timeline && c.wantTL) || (!timeline && !c.wantTL && c.jobID == ev.JobID) {
			select {
			case c.ch <- fr:
			default:
				c.dropped.Add(1)
				dropped++
			}
		}
	}
	h.mu.Unlock()
	if dropped > 0 {
		h.reg.Counter("proteus_api_sse_dropped_total",
			"SSE frames dropped on slow consumers").Add(float64(dropped))
	}
}

// encodeFrame renders the event's complete SSE frame into the hub
// scratch buffer and returns an owned copy (the scratch is reused on the
// next dispatch; the copy is shared read-only by every receiver).
func (h *Hub) encodeFrame(ev sched.Event) []byte {
	h.buf.Reset()
	h.buf.WriteString("event: ")
	h.buf.WriteString(ev.Kind)
	h.buf.WriteString("\ndata: ")
	var err error
	if ev.Kind == sched.EventTimeline {
		// Timeline frames carry the bare utilization point — the same wire
		// shape the handler's replay path writes, so a viewer decodes
		// history and live frames identically.
		h.util = utilWire(*ev.Util)
		err = h.enc.Encode(&h.util)
	} else {
		h.jobID = ev.JobID
		h.wire = Event{
			Kind:      ev.Kind,
			AtMinutes: minutes(ev.At),
			JobID:     &h.jobID,
			JobName:   ev.JobName,
			State:     ev.State.String(),
			Detail:    ev.Detail,
			TraceID:   obs.IDString(ev.TraceID),
			SpanID:    obs.IDString(ev.SpanID),
		}
		err = h.enc.Encode(&h.wire)
	}
	// Encode appends a newline after the JSON; one more closes the frame.
	if err != nil {
		// The wire types cannot fail to marshal; keep the frame shape
		// even if they somehow do.
		h.buf.WriteString("{}\n")
	}
	h.buf.WriteByte('\n')
	return append([]byte(nil), h.buf.Bytes()...)
}
