package server_test

import (
	"bytes"
	"testing"
	"time"

	"proteus/internal/sched"
	"proteus/internal/server"
)

// TestHubSlowConsumerDrops is the backpressure acceptance test for the
// SSE hub: a stalled subscriber (full buffer, never drained) loses its
// own frames and only its own — every dispatch still completes without
// blocking, the healthy subscriber receives the complete stream, and the
// stall shows up on the stalled connection's drop counter. Because
// Dispatch is what the scheduler-facing pump runs, "Dispatch never
// blocks" is exactly "a slow viewer never delays the decision tick".
func TestHubSlowConsumerDrops(t *testing.T) {
	h := server.NewHub(nil, nil) // detached: the test drives Dispatch
	defer h.Close()

	stalled := h.Timeline(2)
	fast := h.Timeline(256)
	job := h.Job(7, 8)

	const n = 100
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			u := sched.UtilPoint{At: time.Duration(i) * time.Minute, LeasedCores: i + 1}
			h.Dispatch(sched.Event{Kind: sched.EventTimeline, At: u.At, JobID: -1, Util: &u})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Dispatch blocked on a stalled consumer")
	}

	// The healthy connection got every frame, in order, fully framed.
	for i := 0; i < n; i++ {
		select {
		case fr := <-fast.C:
			if fr.At != time.Duration(i)*time.Minute {
				t.Fatalf("fast frame %d at %v, want %v", i, fr.At, time.Duration(i)*time.Minute)
			}
			if !bytes.HasPrefix(fr.Data, []byte("event: timeline\ndata: ")) ||
				!bytes.HasSuffix(fr.Data, []byte("\n\n")) {
				t.Fatalf("fast frame %d malformed: %q", i, fr.Data)
			}
			if fr.Terminal {
				t.Fatalf("timeline frame %d marked terminal", i)
			}
		default:
			t.Fatalf("fast connection missing frame %d of %d", i, n)
		}
	}

	// The stalled connection kept its buffered prefix and dropped the
	// rest; nobody else's counter moved.
	if got := stalled.Dropped(); got != n-2 {
		t.Fatalf("stalled dropped %d frames, want %d", got, n-2)
	}
	if len(stalled.C) != 2 {
		t.Fatalf("stalled buffer holds %d frames, want 2", len(stalled.C))
	}
	if fast.Dropped() != 0 || job.Dropped() != 0 {
		t.Fatalf("healthy connections dropped frames: fast=%d job=%d",
			fast.Dropped(), job.Dropped())
	}

	// Filtering: the job connection saw none of the timeline traffic and
	// receives only its own job's lifecycle, terminal on done.
	if len(job.C) != 0 {
		t.Fatalf("job connection received %d timeline frames", len(job.C))
	}
	h.Dispatch(sched.Event{Kind: sched.EventQueued, JobID: 8, JobName: "other"})
	h.Dispatch(sched.Event{Kind: sched.EventQueued, JobID: 7, JobName: "mine"})
	h.Dispatch(sched.Event{Kind: sched.EventDone, JobID: 7, JobName: "mine"})
	if len(job.C) != 2 {
		t.Fatalf("job connection holds %d frames, want 2", len(job.C))
	}
	first, second := <-job.C, <-job.C
	if first.Terminal || !second.Terminal {
		t.Fatalf("terminal flags = %v,%v, want false,true", first.Terminal, second.Terminal)
	}
	if !bytes.Contains(first.Data, []byte(`"job_id": 7`)) && !bytes.Contains(first.Data, []byte(`"job_id":7`)) {
		t.Fatalf("job frame lacks job_id 7: %q", first.Data)
	}

	// Detach closes the connection's channel; a detached connection stops
	// counting against dispatches.
	h.Detach(stalled)
	if _, open := <-stalled.C; open {
		// two buffered frames drain first
		<-stalled.C
		if _, open := <-stalled.C; open {
			t.Fatal("stalled channel still open after Detach")
		}
	}
}
