package sim

import (
	"time"

	"proteus/internal/obs"
)

// InstrumentEngine samples engine health into the registry every virtual
// period: event-queue depth, events fired, virtual time, and the
// virtual-vs-wall speedup ratio (how many simulated seconds each wall
// second buys — the number that makes multi-month market studies finish
// in milliseconds). Sampling stops when the returned ticker is stopped
// or the engine runs out of events.
func InstrumentEngine(reg *obs.Registry, e *Engine, period time.Duration) *Ticker {
	if reg == nil {
		return nil
	}
	pending := reg.Gauge("proteus_sim_pending_events", "discrete-event queue depth")
	fired := reg.Gauge("proteus_sim_fired_events_total", "events executed since engine start")
	virtual := reg.Gauge("proteus_sim_virtual_seconds", "current virtual time in seconds")
	ratio := reg.Gauge("proteus_sim_virtual_per_wall_ratio", "virtual seconds simulated per wall second")

	wallStart := time.Now()
	virtualStart := e.Now()
	sample := func() {
		pending.Set(float64(e.Pending()))
		fired.Set(float64(e.Fired()))
		virtual.Set(e.Now().Seconds())
		if wall := time.Since(wallStart).Seconds(); wall > 0 {
			ratio.Set((e.Now() - virtualStart).Seconds() / wall)
		}
	}
	sample()
	return e.Every(period, "sim.obs", sample)
}
