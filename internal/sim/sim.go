// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock measured in time.Duration since the start
// of the simulation. Events are scheduled at absolute virtual times and
// executed in time order; ties are broken by scheduling order so runs are
// fully deterministic. Market and cost studies in this repository run on a
// sim.Engine instead of wall-clock time, which makes multi-month spot-market
// experiments finish in milliseconds and makes every experiment seedable
// and reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a callback scheduled to run at a virtual time.
type Event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	name string
	// canceled events stay in the heap but are skipped when popped.
	canceled bool
	// transient events were scheduled with AtTransient: no caller holds a
	// handle, so the engine recycles the struct after the event fires.
	transient bool
	index     int
}

// At reports the virtual time this event fires at.
func (e *Event) At() time.Duration { return e.at }

// Name reports the debugging label given at scheduling time.
func (e *Event) Name() string { return e.name }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator.
//
// The zero value is not usable; create engines with NewEngine. Engines are
// not safe for concurrent use: all scheduling must happen from the calling
// goroutine or from event callbacks (which run on the calling goroutine).
type Engine struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	fired  uint64

	// slab is the tail of the current event chunk: events are carved out
	// of 256-struct arrays so a multi-month run costs one heap allocation
	// per 256 events instead of one each. Handed-out structs are never
	// recycled into new events unless they were transient (no handle
	// exists that could observe the reuse).
	slab []Event
	// free holds fired transient events ready for reuse.
	free []*Event
}

// slabSize is the event chunk size; large enough to amortize allocation,
// small enough that a short run wastes little.
const slabSize = 256

// alloc returns a zeroed Event, preferring the transient free list, then
// the current slab chunk.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free = e.free[:n-1]
		*ev = Event{}
		return ev
	}
	if len(e.slab) == 0 {
		e.slab = make([]Event, slabSize)
	}
	ev := &e.slab[0]
	e.slab = e.slab[1:]
	return ev
}

// recycle returns a fired transient event to the free list, dropping its
// callback so the engine does not pin the closure's captures.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled (including canceled ones
// that have not yet been skipped).
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a logic error in the caller, and silently reordering
// time would corrupt every downstream measurement.
func (e *Engine) At(t time.Duration, name string, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v, before now %v", name, t, e.now))
	}
	ev := e.alloc()
	ev.at, ev.seq, ev.fn, ev.name = t, e.seq, fn, name
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// AtTransient schedules fn like At but returns no handle: the engine
// recycles the event's storage after it fires. Use for fire-and-forget
// callbacks that are never canceled — the arrival pumps and decision
// points a long run schedules by the hundreds of thousands.
func (e *Engine) AtTransient(t time.Duration, name string, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v, before now %v", name, t, e.now))
	}
	ev := e.alloc()
	ev.at, ev.seq, ev.fn, ev.name, ev.transient = t, e.seq, fn, name, true
	e.seq++
	heap.Push(&e.events, ev)
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, name string, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, name))
	}
	return e.At(e.now+d, name, fn)
}

// Every schedules fn to run every period, starting one period from now,
// until the returned Ticker is stopped or the engine runs out of horizon.
func (e *Engine) Every(period time.Duration, name string, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v for %q", period, name))
	}
	t := &Ticker{engine: e, period: period, name: name, fn: fn}
	// One wrapper closure for the ticker's whole life; schedule() re-arms
	// the same Event struct, so a steady tick allocates nothing.
	t.tick = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	}
	t.schedule()
	return t
}

// Next reports the virtual time of the earliest pending non-canceled
// event without executing it. Canceled events at the head of the queue
// are discarded as a side effect. It reports false when nothing is
// scheduled — a paced driver (e.g. sched.Scheduler.Serve) uses Next to
// sleep on the wall clock until the virtual timeline is allowed to reach
// the event.
func (e *Engine) Next() (time.Duration, bool) {
	for len(e.events) > 0 {
		if e.events[0].canceled {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0].at, true
	}
	return 0, false
}

// Step executes the next pending event, advancing the clock to its time.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.fired++
		fn := ev.fn
		if ev.transient {
			// Recycle before running fn: no handle exists, and fn itself
			// may schedule the event's successor into the freed struct.
			e.recycle(ev)
		}
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline. Events scheduled beyond the deadline remain pending.
func (e *Engine) RunUntil(deadline time.Duration) {
	for len(e.events) > 0 {
		// Peek: heap root is the earliest event.
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Ticker repeats a callback at a fixed virtual period.
type Ticker struct {
	engine  *Engine
	period  time.Duration
	name    string
	fn      func()
	tick    func() // wrapper installed by Every; shared by every tick
	ev      *Event
	stopped bool
}

// schedule arms the next tick. The first call allocates the ticker's
// Event; later calls re-push the just-fired struct with a fresh sequence
// number — drawn at exactly the point the old allocate-per-tick code
// drew it (after fn ran), so event ordering is unchanged.
func (t *Ticker) schedule() {
	e := t.engine
	at := e.now + t.period
	if t.ev == nil {
		t.ev = e.At(at, t.name, t.tick)
		return
	}
	ev := t.ev
	ev.at, ev.seq, ev.canceled = at, e.seq, false
	e.seq++
	heap.Push(&e.events, ev)
}

// Stop cancels future ticks. It is safe to call from inside the tick
// callback and is idempotent.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}
