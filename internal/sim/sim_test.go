package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3*time.Second, "c", func() { order = append(order, 3) })
	e.At(1*time.Second, "a", func() { order = append(order, 1) })
	e.At(2*time.Second, "b", func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", e.Now())
	}
}

func TestTiesBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(time.Second, "first", func() { order = append(order, "first") })
	e.At(time.Second, "second", func() { order = append(order, "second") })
	e.Run()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v, want [first second]", order)
	}
}

func TestNextPeeksWithoutExecuting(t *testing.T) {
	e := NewEngine()
	if _, ok := e.Next(); ok {
		t.Fatal("Next() on an empty engine reported an event")
	}
	fired := false
	ev := e.At(2*time.Second, "peeked", func() { fired = true })
	e.At(5*time.Second, "later", func() {})
	if at, ok := e.Next(); !ok || at != 2*time.Second {
		t.Fatalf("Next() = %v, %v, want 2s, true", at, ok)
	}
	if fired || e.Now() != 0 {
		t.Fatal("Next() executed the event or advanced the clock")
	}
	// Canceling the head exposes the next live event.
	ev.Cancel()
	if at, ok := e.Next(); !ok || at != 5*time.Second {
		t.Fatalf("Next() after cancel = %v, %v, want 5s, true", at, ok)
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.At(5*time.Second, "outer", func() {
		e.After(2*time.Second, "inner", func() { at = e.Now() })
	})
	e.Run()
	if at != 7*time.Second {
		t.Fatalf("inner fired at %v, want 7s", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10*time.Second, "advance", func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5*time.Second, "late", func() {})
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	e.After(-time.Second, "neg", func() {})
}

func TestCancelPreventsExecution(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(time.Second, "x", func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Minute
		e.At(d, "e", func() { fired = append(fired, d) })
	}
	e.RunUntil(3 * time.Minute)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if e.Now() != 3*time.Minute {
		t.Fatalf("Now() = %v, want 3m", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	// Resuming picks up the remaining events.
	e.Run()
	if len(fired) != 5 {
		t.Fatalf("fired %d events after Run, want 5", len(fired))
	}
}

func TestRunUntilAdvancesClockWithNoEvents(t *testing.T) {
	e := NewEngine()
	e.RunUntil(time.Hour)
	if e.Now() != time.Hour {
		t.Fatalf("Now() = %v, want 1h", e.Now())
	}
}

func TestEventAtAndName(t *testing.T) {
	e := NewEngine()
	ev := e.At(42*time.Second, "answer", func() {})
	if ev.At() != 42*time.Second {
		t.Fatalf("At() = %v, want 42s", ev.At())
	}
	if ev.Name() != "answer" {
		t.Fatalf("Name() = %q, want answer", ev.Name())
	}
}

func TestTickerFiresRepeatedly(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Every(time.Minute, "tick", func() { count++ })
	e.RunUntil(5 * time.Minute)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	e.RunUntil(7 * time.Minute)
	if count != 7 {
		t.Fatalf("count = %d, want 7", count)
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = e.Every(time.Minute, "tick", func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.RunUntil(time.Hour)
	if count != 3 {
		t.Fatalf("count = %d, want 3 (ticker should stop itself)", count)
	}
	tk.Stop() // idempotent
}

func TestZeroPeriodTickerPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	e.Every(0, "bad", func() {})
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.At(time.Duration(i)*time.Second, "e", func() {})
	}
	e.Run()
	if e.Fired() != 10 {
		t.Fatalf("Fired() = %d, want 10", e.Fired())
	}
}

// Property: for any set of non-negative offsets, events fire in sorted
// order and the final clock equals the max offset.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine()
		var fired []time.Duration
		for _, r := range raw {
			d := time.Duration(r) * time.Millisecond
			e.At(d, "e", func() { fired = append(fired, d) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		max := fired[len(fired)-1]
		return e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving RunUntil calls at arbitrary deadlines fires the
// same events as a single Run.
func TestPropertyRunUntilEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		offsets := make([]time.Duration, n)
		for i := range offsets {
			offsets[i] = time.Duration(rng.Intn(1000)) * time.Millisecond
		}

		runAll := func(stepwise bool) []time.Duration {
			e := NewEngine()
			var fired []time.Duration
			for _, d := range offsets {
				d := d
				e.At(d, "e", func() { fired = append(fired, d) })
			}
			if stepwise {
				deadline := time.Duration(0)
				for e.Pending() > 0 {
					deadline += time.Duration(1+rng.Intn(200)) * time.Millisecond
					e.RunUntil(deadline)
				}
			} else {
				e.Run()
			}
			return fired
		}

		a, b := runAll(false), runAll(true)
		if len(a) != len(b) {
			t.Fatalf("trial %d: fired %d vs %d", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: order differs at %d: %v vs %v", trial, i, a[i], b[i])
			}
		}
	}
}
