package trace

import (
	"math/rand"
	"testing"
	"time"
)

// benchTrace is a 30-day history at the default generator settings —
// the same shape NewEnv trains β on.
func benchTrace(b *testing.B) *Trace {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	return Generate("c4.2xlarge", "bench", 30*24*time.Hour, DefaultGenConfig(0.419), rng)
}

// BenchmarkBuildBetaTable times the β-table training kernel (§4.1): the
// full default delta grid at the default per-delta sample count, serial.
// This is the single most executed kernel of a RunSchemes cell — every
// (scheme, zone, sample) task trains one table per catalog type.
func BenchmarkBuildBetaTable(b *testing.B) {
	tr := benchTrace(b)
	deltas := DefaultDeltas()
	b.ReportAllocs()
	b.ResetTimer()
	var bt *BetaTable
	for i := 0; i < b.N; i++ {
		bt = BuildBetaTable(tr, deltas, 400, 1)
	}
	b.ReportMetric(bt.Stats[0].Beta, "beta-at-min-delta")
}

// BenchmarkEstimateEviction times one delta's Monte-Carlo estimate.
func BenchmarkEstimateEviction(b *testing.B) {
	tr := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		EstimateEviction(tr, 0.01, 400, rng)
	}
}

// BenchmarkMeanPrice times the time-weighted mean over a 20-day window.
func BenchmarkMeanPrice(b *testing.B) {
	tr := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	var v float64
	for i := 0; i < b.N; i++ {
		v = tr.MeanPrice(24*time.Hour, 21*24*time.Hour)
	}
	_ = v
}

// BenchmarkComputeStats times the Fig. 3 trace characterization.
func BenchmarkComputeStats(b *testing.B) {
	tr := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeStats(tr, 0.419); err != nil {
			b.Fatal(err)
		}
	}
}
