package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// WriteCSV encodes the trace as CSV with a header row:
//
//	instance_type,zone,at_ns,price
//
// One row per price change, in time order. Times are integer nanoseconds so
// the round trip is exact.
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"instance_type", "zone", "at_ns", "price"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, p := range tr.Points {
		row := []string{
			tr.InstanceType,
			tr.Zone,
			strconv.FormatInt(int64(p.At), 10),
			strconv.FormatFloat(p.Price, 'f', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes traces from the CSV format produced by WriteCSV. Rows for
// multiple instance types and zones may be interleaved; one Trace is
// returned per (type, zone) pair in first-appearance order.
func ReadCSV(r io.Reader) ([]*Trace, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if len(header) != 4 || header[0] != "instance_type" {
		return nil, fmt.Errorf("trace: unexpected header %v", header)
	}
	byKey := make(map[string]*Trace)
	var order []string
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read row: %w", err)
		}
		if len(row) != 4 {
			return nil, fmt.Errorf("trace: row has %d fields, want 4", len(row))
		}
		if row[0] == "instance_type" && row[2] == "at_ns" {
			continue // repeated header: concatenated per-trace exports
		}
		ns, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad at_ns %q: %w", row[2], err)
		}
		price, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad price %q: %w", row[3], err)
		}
		key := row[0] + "/" + row[1]
		tr, ok := byKey[key]
		if !ok {
			tr = &Trace{InstanceType: row[0], Zone: row[1]}
			byKey[key] = tr
			order = append(order, key)
		}
		tr.Points = append(tr.Points, Point{At: time.Duration(ns), Price: price})
	}
	out := make([]*Trace, 0, len(order))
	for _, key := range order {
		tr := byKey[key]
		if err := tr.Validate(); err != nil {
			return nil, err
		}
		out = append(out, tr)
	}
	return out, nil
}
