package trace

import (
	"sort"
	"time"
)

// Cursor is a stateful reader over one Trace optimized for the access
// pattern every simulation consumer has: query times that move forward
// almost always, and occasionally jump back (a re-armed eviction scan, a
// fresh sample window). It answers the same questions as the Trace
// methods of the same names — bit-identical results, asserted by
// TestCursorMatchesSearchPaths — but amortizes the point lookup:
//
//   - monotone (non-decreasing) query times advance an index with a
//     short linear walk, O(1) amortized over a sweep;
//   - a long forward jump gives up on walking after a few steps and
//     binary-searches the remaining suffix;
//   - a backward seek falls back to a binary search of the prefix.
//
// The zero Cursor is not usable; obtain cursors with NewCursor. A Cursor
// holds mutable position state and must not be shared between goroutines;
// the underlying Trace is read-only and may be shared freely.
type Cursor struct {
	tr *Trace
	i  int // index of the last point with At <= previous query time
}

// NewCursor returns a cursor positioned at the start of the trace.
func NewCursor(tr *Trace) *Cursor {
	return &Cursor{tr: tr}
}

// seekWalkLimit bounds the linear advance before a forward seek falls
// back to binary search. Sweeps touch adjacent points, so the walk
// almost always terminates within a step or two; the limit only matters
// for long jumps (e.g. a cursor reused across distant sample windows).
const seekWalkLimit = 16

// seek positions the cursor at the last point with At <= t and returns
// that index. Times before the first point return index 0.
func (c *Cursor) seek(t time.Duration) int {
	pts := c.tr.Points
	i := c.i
	if i >= len(pts) {
		i = len(pts) - 1
	}
	if t < pts[i].At {
		// Backward seek: the answer lies strictly left of i.
		j := sort.Search(i, func(k int) bool { return pts[k].At > t })
		if j > 0 {
			j--
		}
		i = j
	} else {
		steps := 0
		for i+1 < len(pts) && pts[i+1].At <= t {
			i++
			steps++
			if steps == seekWalkLimit {
				// Long forward jump: binary-search the suffix.
				i += sort.Search(len(pts)-(i+1), func(k int) bool { return pts[i+1+k].At > t })
				break
			}
		}
	}
	c.i = i
	return i
}

// PriceAt returns the market price in effect at time t, equal to
// (*Trace).PriceAt for every t.
func (c *Cursor) PriceAt(t time.Duration) float64 {
	return c.tr.Points[c.seek(t)].Price
}

// NextChange returns the time of the first price change strictly after
// t, and false if none remains — equal to (*Trace).NextChange.
func (c *Cursor) NextChange(t time.Duration) (time.Duration, bool) {
	pts := c.tr.Points
	i := c.seek(t)
	if t < pts[0].At {
		return pts[0].At, true
	}
	if i+1 >= len(pts) {
		return 0, false
	}
	return pts[i+1].At, true
}

// FirstCrossingAbove returns the earliest time in (from, horizon] at
// which the price strictly exceeds threshold, and false if it never does
// — equal to (*Trace).FirstCrossingAbove. The scan walks points with a
// local index, so the cursor itself stays positioned at `from`: a
// subsequent query at a time >= from (the common monotone case) still
// advances in O(1) amortized instead of re-seeking past the scan window.
func (c *Cursor) FirstCrossingAbove(threshold float64, from, horizon time.Duration) (time.Duration, bool) {
	pts := c.tr.Points
	i := c.seek(from)
	if pts[i].Price > threshold {
		return from, true
	}
	for j := i + 1; j < len(pts); j++ {
		if pts[j].At > horizon {
			return 0, false
		}
		if pts[j].Price > threshold {
			return pts[j].At, true
		}
	}
	return 0, false
}

// MeanPrice returns the time-weighted mean price over [from, to], equal
// to (*Trace).MeanPrice (both delegate to the prefix-sum integral).
func (c *Cursor) MeanPrice(from, to time.Duration) float64 {
	return c.tr.MeanPrice(from, to)
}
