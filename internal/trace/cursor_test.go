package trace

import (
	"math/rand"
	"testing"
	"time"
)

// TestCursorMatchesSearchPaths is the cursor's equivalence contract: for
// monotone, repeated, and backward query sequences, every Cursor answer
// must equal the binary-search Trace method it replaces — same bits,
// including the found/ok flags. The query streams deliberately exercise
// the cursor's three seek regimes (short walk, long forward jump past
// the walk limit, backward binary search).
func TestCursorMatchesSearchPaths(t *testing.T) {
	onDemand := 0.419
	tr := Generate("c4.2xlarge", "z", 10*24*time.Hour, DefaultGenConfig(onDemand), rand.New(rand.NewSource(11)))
	dur := tr.Duration()

	checkOn := func(t *testing.T, tr *Trace, cur *Cursor, q time.Duration) {
		t.Helper()
		if got, want := cur.PriceAt(q), tr.PriceAt(q); got != want {
			t.Fatalf("PriceAt(%v) = %v, want %v", q, got, want)
		}
		gotAt, gotOK := cur.NextChange(q)
		wantAt, wantOK := tr.NextChange(q)
		if gotAt != wantAt || gotOK != wantOK {
			t.Fatalf("NextChange(%v) = %v,%v want %v,%v", q, gotAt, gotOK, wantAt, wantOK)
		}
		for _, thr := range []float64{0.05, onDemand * 0.5, onDemand, onDemand * 2} {
			horizon := q + BillingHour
			gotAt, gotOK := cur.FirstCrossingAbove(thr, q, horizon)
			wantAt, wantOK := tr.FirstCrossingAbove(thr, q, horizon)
			if gotAt != wantAt || gotOK != wantOK {
				t.Fatalf("FirstCrossingAbove(%v, %v) = %v,%v want %v,%v",
					thr, q, gotAt, gotOK, wantAt, wantOK)
			}
		}
	}
	check := func(t *testing.T, cur *Cursor, q time.Duration) {
		t.Helper()
		checkOn(t, tr, cur, q)
	}

	t.Run("monotone", func(t *testing.T) {
		// Fine steps (walk regime) and coarse jumps (binary-search
		// fallback past the walk limit), interleaved.
		cur := NewCursor(tr)
		for q := time.Duration(0); q <= dur; q += 7 * time.Minute {
			check(t, cur, q)
		}
		cur = NewCursor(tr)
		for q := time.Duration(0); q <= dur; q += 9 * time.Hour {
			check(t, cur, q)
		}
	})

	t.Run("repeated", func(t *testing.T) {
		cur := NewCursor(tr)
		for q := time.Duration(0); q <= dur; q += 3 * time.Hour {
			check(t, cur, q)
			check(t, cur, q) // identical query twice: zero-step walk
			check(t, cur, q)
		}
	})

	t.Run("backward", func(t *testing.T) {
		// Random jumps in both directions, including exact point times
		// and times before the first point.
		cur := NewCursor(tr)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 4000; i++ {
			q := time.Duration(rng.Int63n(int64(dur) + 1))
			if i%17 == 0 {
				q = tr.Points[rng.Intn(len(tr.Points))].At
			}
			check(t, cur, q)
		}
		// Sweep strictly backward from the end.
		cur = NewCursor(tr)
		for q := dur; q >= 0; q -= 11 * time.Minute {
			check(t, cur, q)
		}
	})

	t.Run("before-first-point", func(t *testing.T) {
		// Synthetic trace whose history starts after t=0: queries before
		// the first point exercise the clamp in both implementations.
		late := &Trace{
			InstanceType: "x",
			Zone:         "z",
			Points: []Point{
				{At: time.Hour, Price: 0.10},
				{At: 2 * time.Hour, Price: 0.30},
				{At: 3 * time.Hour, Price: 0.05},
			},
		}
		cur := NewCursor(late)
		for _, q := range []time.Duration{0, time.Minute, time.Hour - 1, time.Hour,
			90 * time.Minute, 3 * time.Hour, 4 * time.Hour, time.Minute} {
			checkOn(t, late, cur, q)
		}
	})
}

// TestCursorMeanPriceMatchesTrace pins the cursor's MeanPrice delegation.
func TestCursorMeanPriceMatchesTrace(t *testing.T) {
	tr := Generate("c4.xlarge", "z", 3*24*time.Hour, DefaultGenConfig(0.209), rand.New(rand.NewSource(3)))
	cur := NewCursor(tr)
	for from := time.Duration(0); from < tr.Duration(); from += 5 * time.Hour {
		to := from + 7*time.Hour
		if got, want := cur.MeanPrice(from, to), tr.MeanPrice(from, to); got != want {
			t.Fatalf("MeanPrice(%v,%v) = %v, want %v", from, to, got, want)
		}
	}
}
