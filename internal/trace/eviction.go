package trace

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"proteus/internal/par"
)

// EvictionStats summarizes what happens to an allocation made at a given
// bid delta over the market price: the probability β of being evicted
// before the billing hour ends, and the median time to eviction among the
// evicted samples. This mirrors §4.1: "BidBrain computes the historical
// probability of being evicted within the hour and the median time to
// eviction for a given bid delta."
type EvictionStats struct {
	BidDelta       float64
	Beta           float64       // P(evicted within the billing hour)
	MedianTTE      time.Duration // median time to eviction among evicted samples
	Samples        int
	EvictedSamples int
}

// BillingHour is the billing granularity assumed throughout: allocations
// are paid for by the hour and refunds apply to the final partial hour on
// eviction (§2.2).
const BillingHour = time.Hour

// EstimateEviction replays history: at sampleCount uniformly random start
// times it bids PriceAt(start)+delta and records whether the price crosses
// above the bid within the billing hour, and when. The rng makes sampling
// deterministic per seed.
//
// The kernel draws every start first (the identical rng stream the old
// per-sample loop consumed — one Int63n per sample, nothing else), sorts
// the starts, and sweeps one Cursor over the trace in start order. That
// replaces two binary searches per price-change step per sample with an
// amortized-O(1) cursor advance plus a bounded linear walk over the
// sample's billing-hour window. β is a count and the median is taken
// after sorting the times-to-eviction, so processing samples in sorted
// rather than drawn order changes no output bit.
func EstimateEviction(tr *Trace, delta float64, sampleCount int, rng *rand.Rand) EvictionStats {
	if sampleCount <= 0 {
		panic("trace: sampleCount must be positive")
	}
	horizonMax := tr.Duration() - BillingHour
	if horizonMax <= 0 {
		// Trace shorter than an hour: every sample starts at 0.
		horizonMax = 1
	}
	stats := EvictionStats{BidDelta: delta, Samples: sampleCount}
	starts := make([]int64, sampleCount)
	for i := range starts {
		starts[i] = rng.Int63n(int64(horizonMax))
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	cur := NewCursor(tr)
	ttes := make([]float64, 0, sampleCount)
	for _, s := range starts {
		start := time.Duration(s)
		bid := cur.PriceAt(start) + delta
		cross, evicted := cur.FirstCrossingAbove(bid, start, start+BillingHour)
		if evicted {
			stats.EvictedSamples++
			ttes = append(ttes, float64(cross-start))
		}
	}
	stats.Beta = float64(stats.EvictedSamples) / float64(stats.Samples)
	if len(ttes) > 0 {
		sort.Float64s(ttes)
		stats.MedianTTE = time.Duration(ttes[len(ttes)/2])
	} else {
		stats.MedianTTE = BillingHour
	}
	return stats
}

// BetaTable maps bid deltas to eviction statistics for one instance type.
// BidBrain interpolates over the table when pricing candidate allocations.
type BetaTable struct {
	InstanceType string
	Deltas       []float64 // ascending
	Stats        []EvictionStats
}

// DefaultDeltas is the bid-delta grid the paper sweeps: a wide range from
// effectively-at-market to far above it ([$0.0001, $0.4], §4.2).
func DefaultDeltas() []float64 {
	return []float64{0.0001, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4}
}

// BuildBetaTable estimates eviction stats for every delta in deltas
// against the historical trace, serially. Each delta's Monte-Carlo
// stream is seeded by par.SeedAt(seed, i), so a delta's estimate
// depends only on (trace, delta position, samples, seed) — growing the
// grid never reshuffles the deltas that were already there — and
// BuildBetaTableParallel produces the identical table at any worker
// count.
func BuildBetaTable(tr *Trace, deltas []float64, samplesPerDelta int, seed int64) *BetaTable {
	return BuildBetaTableParallel(tr, deltas, samplesPerDelta, seed, 1)
}

// BuildBetaTableParallel trains the table with the per-delta estimates
// fanned out over up to workers goroutines (<= 0 means GOMAXPROCS).
// Output is bit-identical to BuildBetaTable: every delta owns a rand
// stream derived from (seed, delta index) and the stats are collected
// in grid order.
func BuildBetaTableParallel(tr *Trace, deltas []float64, samplesPerDelta int, seed int64, workers int) *BetaTable {
	if !sort.Float64sAreSorted(deltas) {
		panic("trace: deltas must be ascending")
	}
	stats, err := par.Map(len(deltas), workers, func(i int) (EvictionStats, error) {
		rng := rand.New(rand.NewSource(par.SeedAt(seed, uint64(i))))
		return EstimateEviction(tr, deltas[i], samplesPerDelta, rng), nil
	})
	if err != nil { // fn never errors
		panic(err)
	}
	return &BetaTable{
		InstanceType: tr.InstanceType,
		Deltas:       append([]float64(nil), deltas...),
		Stats:        stats,
	}
}

// Beta returns the estimated eviction probability for a bid delta,
// linearly interpolating between grid points and clamping outside the grid.
func (bt *BetaTable) Beta(delta float64) float64 {
	return bt.interp(delta, func(s EvictionStats) float64 { return s.Beta })
}

// MedianTTE returns the interpolated median time-to-eviction for a delta.
func (bt *BetaTable) MedianTTE(delta float64) time.Duration {
	v := bt.interp(delta, func(s EvictionStats) float64 { return float64(s.MedianTTE) })
	return time.Duration(v)
}

func (bt *BetaTable) interp(delta float64, f func(EvictionStats) float64) float64 {
	n := len(bt.Deltas)
	if n == 0 {
		panic(fmt.Sprintf("trace: empty beta table for %s", bt.InstanceType))
	}
	if delta <= bt.Deltas[0] {
		return f(bt.Stats[0])
	}
	if delta >= bt.Deltas[n-1] {
		return f(bt.Stats[n-1])
	}
	i := sort.SearchFloat64s(bt.Deltas, delta)
	// bt.Deltas[i-1] < delta <= bt.Deltas[i]
	lo, hi := bt.Deltas[i-1], bt.Deltas[i]
	frac := (delta - lo) / (hi - lo)
	return f(bt.Stats[i-1])*(1-frac) + f(bt.Stats[i])*frac
}
