package trace

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func goldenTrace() *Trace {
	return Generate("c4.xlarge", "z", 30*24*time.Hour, DefaultGenConfig(0.209), rand.New(rand.NewSource(4)))
}

// BuildBetaTable's contract: the table is identical at every worker
// count, so the parallel trainer can replace the serial one anywhere.
func TestBuildBetaTableParallelDeterministic(t *testing.T) {
	tr := goldenTrace()
	serial := BuildBetaTable(tr, DefaultDeltas(), 300, 17)
	for _, workers := range []int{0, 2, 8} {
		got := BuildBetaTableParallel(tr, DefaultDeltas(), 300, 17, workers)
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d: table differs from serial", workers)
		}
	}
}

// Each delta's Monte-Carlo stream is seeded from (seed, delta index)
// alone, so extending the grid must leave the original deltas' stats
// untouched — the property the old seed+i*104729 scheme happened to
// have and par.SeedAt keeps by construction.
func TestBuildBetaTablePrefixStableUnderGridGrowth(t *testing.T) {
	tr := goldenTrace()
	base := BuildBetaTable(tr, DefaultDeltas(), 300, 17)
	grown := BuildBetaTable(tr, append(DefaultDeltas(), 0.8, 1.6), 300, 17)
	if !reflect.DeepEqual(base.Stats, grown.Stats[:len(base.Stats)]) {
		t.Fatal("growing the delta grid reshuffled existing deltas' stats")
	}
}

// Compat pin: the β values of the default grid under the par.SeedAt
// derivation. Any change to the seeding, the sampler, or the grid walk
// shifts these and must be a deliberate decision, not an accident.
func TestBuildBetaTableGoldenDefaultGrid(t *testing.T) {
	golden := []struct {
		delta, beta float64
		medianTTE   time.Duration
	}{
		{0.0001, 0.83, 725765548089},
		{0.001, 0.71, 816284270043},
		{0.005, 0.4, 1069683754808},
		{0.01, 0.19666666666666666, 1544606831424},
		{0.02, 0.21333333333333335, 1664376437163},
		{0.05, 0.17666666666666667, 1753547785627},
		{0.1, 0.13, 1580317501626},
		{0.2, 0.15, 1769486588531},
		{0.4, 0.04666666666666667, 2589087059669},
	}
	bt := BuildBetaTable(goldenTrace(), DefaultDeltas(), 300, 17)
	if len(bt.Stats) != len(golden) {
		t.Fatalf("got %d stats, want %d", len(bt.Stats), len(golden))
	}
	for i, g := range golden {
		s := bt.Stats[i]
		if bt.Deltas[i] != g.delta {
			t.Fatalf("delta[%d] = %v, want %v", i, bt.Deltas[i], g.delta)
		}
		if math.Abs(s.Beta-g.beta) > 1e-15 {
			t.Fatalf("beta[%d] = %v, want %v", i, s.Beta, g.beta)
		}
		if s.MedianTTE != g.medianTTE {
			t.Fatalf("medianTTE[%d] = %v, want %v", i, s.MedianTTE, g.medianTTE)
		}
	}
}
