package trace

import (
	"fmt"
	"time"

	"proteus/internal/obs"
)

// ObserveSet exports a trace set's per-type price statistics (the §2.2
// market characterization: mean discount, time above on-demand, spike
// counts) to the observer's registry, and emits one span per
// above-on-demand spike to its tracer, stamped on the trace's own
// timeline. It rebinds the observer's clock while walking the points, so
// pass a dedicated observer — not one already bound to a live engine.
func ObserveSet(o *obs.Observer, set *Set, onDemand map[string]float64) error {
	if o == nil {
		return nil
	}
	reg := o.Reg()
	var at time.Duration
	o.SetClock(func() time.Duration { return at })
	for _, name := range set.Types() {
		tr, _ := set.Get(name)
		od, ok := onDemand[name]
		if !ok {
			return fmt.Errorf("trace: no on-demand price for %s", name)
		}
		s, err := ComputeStats(tr, od)
		if err != nil {
			return fmt.Errorf("trace: observe %s: %w", name, err)
		}
		l := obs.L("type", name)
		reg.Gauge("proteus_trace_mean_price_dollars",
			"Time-weighted mean spot price over the trace.", l).Set(s.MeanPrice)
		reg.Gauge("proteus_trace_mean_discount_ratio",
			"Mean discount off the on-demand price (1 - mean/OD).", l).Set(s.MeanDiscount)
		reg.Gauge("proteus_trace_above_ondemand_ratio",
			"Fraction of trace time with the spot price above on-demand.", l).Set(s.TimeAboveOnDemand)
		reg.Counter("proteus_trace_spikes_total",
			"Maximal above-on-demand intervals in the trace.", l).Add(float64(s.Spikes))
		reg.Counter("proteus_trace_price_changes_total",
			"Price change points in the trace.", l).Add(float64(s.Changes))

		// One span per spike, on the trace's timeline.
		var sp *obs.Span
		var peak float64
		inSpike := false
		for _, p := range tr.Points {
			switch {
			case p.Price > od && !inSpike:
				inSpike = true
				peak = p.Price
				at = p.At
				sp = o.Trace().Start("trace", "spike")
			case p.Price > od && p.Price > peak:
				peak = p.Price
			case p.Price <= od && inSpike:
				inSpike = false
				at = p.At
				sp.Detailf("%s peak $%.4f vs on-demand $%.4f", name, peak, od)
				sp.End()
			}
		}
		if inSpike {
			at = tr.Duration()
			sp.Detailf("%s peak $%.4f vs on-demand $%.4f (open at trace end)", name, peak, od)
			sp.End()
		}
	}
	return nil
}
