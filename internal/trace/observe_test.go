package trace

import (
	"testing"
	"time"

	"proteus/internal/obs"
)

func TestObserveSetExportsStatsAndSpikes(t *testing.T) {
	set := NewSet("z")
	set.Add(&Trace{InstanceType: "m1", Zone: "z", Points: []Point{
		{At: 0, Price: 0.25},
		{At: 1 * time.Hour, Price: 3.0}, // spike above OD=1
		{At: 2 * time.Hour, Price: 0.25},
		{At: 3 * time.Hour, Price: 5.0}, // open spike at trace end
	}})
	o := obs.NewObserver(nil)
	if err := ObserveSet(o, set, map[string]float64{"m1": 1.0}); err != nil {
		t.Fatal(err)
	}

	if v := o.Reg().Counter("proteus_trace_spikes_total", "", obs.L("type", "m1")).Value(); v != 2 {
		t.Fatalf("spikes counter = %v, want 2", v)
	}
	if v := o.Reg().Gauge("proteus_trace_mean_discount_ratio", "", obs.L("type", "m1")).Value(); v >= 1 || v <= -10 {
		t.Fatalf("discount gauge out of range: %v", v)
	}
	spikes := o.Trace().Filter("trace", "spike")
	if len(spikes) != 2 {
		t.Fatalf("spike spans = %d, want 2", len(spikes))
	}
	if spikes[0].Start != 1*time.Hour || spikes[0].End != 2*time.Hour {
		t.Fatalf("first spike span [%v, %v], want [1h, 2h]", spikes[0].Start, spikes[0].End)
	}
	if spikes[1].End != spikes[1].Start {
		// the open spike closes at the trace end, which IS its start here
		// (last point); both stamps must equal 3h
		t.Logf("open spike span [%v, %v]", spikes[1].Start, spikes[1].End)
	}
	if spikes[1].Start != 3*time.Hour || spikes[1].End != 3*time.Hour {
		t.Fatalf("open spike span [%v, %v], want [3h, 3h]", spikes[1].Start, spikes[1].End)
	}
}

func TestObserveSetMissingPrice(t *testing.T) {
	set := NewSet("z")
	set.Add(&Trace{InstanceType: "m1", Zone: "z", Points: []Point{{At: 0, Price: 0.1}}})
	if err := ObserveSet(obs.NewObserver(nil), set, nil); err == nil {
		t.Fatal("missing on-demand price should error")
	}
	// A nil observer is a no-op, never an error.
	if err := ObserveSet(nil, set, nil); err != nil {
		t.Fatal(err)
	}
}
