package trace

import (
	"fmt"
	"time"
)

// Stats summarizes a price trace the way the paper characterizes markets
// (§2.2: "machines are often available at a steep discount (e.g., 70–80%
// lower price)" with intermittent spikes; Fig. 3).
type Stats struct {
	InstanceType string
	Zone         string
	Duration     time.Duration
	Changes      int

	MeanPrice float64
	MinPrice  float64
	MaxPrice  float64
	// MeanDiscount is 1 − MeanPrice/onDemand: the paper's "70–80%
	// discount" corresponds to values in [0.7, 0.8].
	MeanDiscount float64
	// TimeAboveOnDemand is the fraction of time the spot price exceeds
	// the on-demand price (only spike periods).
	TimeAboveOnDemand float64
	// Spikes counts maximal intervals with price above on-demand.
	Spikes int
	// MeanSpikeDuration averages those intervals' lengths.
	MeanSpikeDuration time.Duration
}

// ComputeStats analyzes a trace against the type's on-demand price.
func ComputeStats(tr *Trace, onDemand float64) (Stats, error) {
	if err := tr.Validate(); err != nil {
		return Stats{}, err
	}
	if onDemand <= 0 {
		return Stats{}, fmt.Errorf("trace: on-demand price must be positive")
	}
	s := Stats{
		InstanceType: tr.InstanceType,
		Zone:         tr.Zone,
		Duration:     tr.Duration(),
		Changes:      len(tr.Points),
		MinPrice:     tr.Points[0].Price,
		MaxPrice:     tr.Points[0].Price,
	}
	var aboveTime time.Duration
	var spikeStart time.Duration
	inSpike := false
	for i, p := range tr.Points {
		if p.Price < s.MinPrice {
			s.MinPrice = p.Price
		}
		if p.Price > s.MaxPrice {
			s.MaxPrice = p.Price
		}
		end := s.Duration
		if i+1 < len(tr.Points) {
			end = tr.Points[i+1].At
		}
		span := end - p.At
		above := p.Price > onDemand
		if above {
			aboveTime += span
			if !inSpike {
				inSpike = true
				spikeStart = p.At
			}
		} else if inSpike {
			inSpike = false
			s.Spikes++
			s.MeanSpikeDuration += p.At - spikeStart
		}
	}
	if inSpike {
		s.Spikes++
		s.MeanSpikeDuration += s.Duration - spikeStart
	}
	if s.Spikes > 0 {
		s.MeanSpikeDuration /= time.Duration(s.Spikes)
	}
	// One mean implementation for the whole package: the prefix-sum
	// integral behind (*Trace).MeanPrice. Its cumulative array is built
	// in the same left-to-right order as the stepwise sum this replaced,
	// so the Fig. 3 stats are bit-for-bit unchanged (pinned by
	// TestComputeStatsGoldenFig3).
	s.MeanPrice = tr.MeanPrice(0, s.Duration)
	if s.Duration > 0 {
		s.TimeAboveOnDemand = float64(aboveTime) / float64(s.Duration)
	}
	s.MeanDiscount = 1 - s.MeanPrice/onDemand
	return s, nil
}
