package trace

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestComputeStatsKnownTrace(t *testing.T) {
	tr := mkTrace(
		Point{0, 0.05},
		Point{time.Hour, 0.50},     // spike above OD 0.209
		Point{2 * time.Hour, 0.05}, // back down
		Point{4 * time.Hour, 0.05},
	)
	s, err := ComputeStats(tr, 0.209)
	if err != nil {
		t.Fatal(err)
	}
	if s.Changes != 4 || s.Duration != 4*time.Hour {
		t.Fatalf("meta: %+v", s)
	}
	if s.MinPrice != 0.05 || s.MaxPrice != 0.50 {
		t.Fatalf("min/max = %v/%v", s.MinPrice, s.MaxPrice)
	}
	wantMean := (0.05*1 + 0.50*1 + 0.05*2) / 4
	if math.Abs(s.MeanPrice-wantMean) > 1e-12 {
		t.Fatalf("mean = %v, want %v", s.MeanPrice, wantMean)
	}
	if s.Spikes != 1 || s.MeanSpikeDuration != time.Hour {
		t.Fatalf("spikes = %d / %v", s.Spikes, s.MeanSpikeDuration)
	}
	if math.Abs(s.TimeAboveOnDemand-0.25) > 1e-12 {
		t.Fatalf("above fraction = %v, want 0.25", s.TimeAboveOnDemand)
	}
}

func TestComputeStatsTrailingSpike(t *testing.T) {
	tr := mkTrace(Point{0, 0.05}, Point{time.Hour, 0.9})
	s, err := ComputeStats(tr, 0.209)
	if err != nil {
		t.Fatal(err)
	}
	// The trace ends mid-spike: the spike must still be counted, with
	// zero measured duration (it starts at the final point).
	if s.Spikes != 1 {
		t.Fatalf("trailing spike not counted: %+v", s)
	}
}

func TestComputeStatsCalibration(t *testing.T) {
	// The default generator must land in the paper's 70–80%-discount
	// regime with a small above-on-demand fraction.
	onDemand := 0.419
	tr := Generate("c4.2xlarge", "z", 14*24*time.Hour, DefaultGenConfig(onDemand), rand.New(rand.NewSource(6)))
	s, err := ComputeStats(tr, onDemand)
	if err != nil {
		t.Fatal(err)
	}
	// The time-weighted mean includes spike periods, so it sits below the
	// quiet-regime 70-80% discount; the quiet regime itself shows in the
	// minimum price.
	if s.MeanDiscount < 0.4 || s.MeanDiscount > 0.85 {
		t.Fatalf("mean discount = %.2f out of range", s.MeanDiscount)
	}
	if quiet := 1 - s.MinPrice/onDemand; quiet < 0.7 || quiet > 0.85 {
		t.Fatalf("quiet-regime discount = %.2f, want the paper's 70-80%%", quiet)
	}
	if s.TimeAboveOnDemand <= 0 || s.TimeAboveOnDemand > 0.35 {
		t.Fatalf("above-on-demand fraction = %.3f", s.TimeAboveOnDemand)
	}
	if s.Spikes < 10 {
		t.Fatalf("spikes = %d over two weeks; generator too quiet", s.Spikes)
	}
}

func TestComputeStatsValidation(t *testing.T) {
	if _, err := ComputeStats(&Trace{}, 1); err == nil {
		t.Fatal("empty trace accepted")
	}
	tr := mkTrace(Point{0, 0.05})
	if _, err := ComputeStats(tr, 0); err == nil {
		t.Fatal("zero on-demand accepted")
	}
}

// TestComputeStatsGoldenFig3 pins the exact Fig. 3-style trace statistics
// for one generated history. These are bit-for-bit golden values: the
// prefix-sum mean that replaced the stepwise accumulation in ComputeStats
// builds its cumulative sums in the same left-to-right order, so any
// future change that alters a single bit of these outputs is a behavior
// change, not an optimization.
func TestComputeStatsGoldenFig3(t *testing.T) {
	onDemand := 0.419
	tr := Generate("c4.2xlarge", "us-east-1a", 6*24*time.Hour, DefaultGenConfig(onDemand), rand.New(rand.NewSource(7)))
	s, err := ComputeStats(tr, onDemand)
	if err != nil {
		t.Fatal(err)
	}
	if s.Changes != 929 {
		t.Errorf("Changes = %d, want 929", s.Changes)
	}
	if got := int64(s.Duration); got != 518344646575383 {
		t.Errorf("Duration = %d, want 518344646575383", got)
	}
	if s.MeanPrice != 0.17920823682684367 {
		t.Errorf("MeanPrice = %.17g, want 0.17920823682684367", s.MeanPrice)
	}
	if s.MinPrice != 0.0964 {
		t.Errorf("MinPrice = %.17g, want 0.0964", s.MinPrice)
	}
	if s.MaxPrice != 1.2422 {
		t.Errorf("MaxPrice = %.17g, want 1.2422", s.MaxPrice)
	}
	if s.MeanDiscount != 0.57229537750156645 {
		t.Errorf("MeanDiscount = %.17g, want 0.57229537750156645", s.MeanDiscount)
	}
	if s.TimeAboveOnDemand != 0.099273529053666931 {
		t.Errorf("TimeAboveOnDemand = %.17g, want 0.099273529053666931", s.TimeAboveOnDemand)
	}
	if s.Spikes != 23 {
		t.Errorf("Spikes = %d, want 23", s.Spikes)
	}
	if got := int64(s.MeanSpikeDuration); got != 2237300101374 {
		t.Errorf("MeanSpikeDuration = %d, want 2237300101374", got)
	}
}
