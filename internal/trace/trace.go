// Package trace models spot-market price traces.
//
// A Trace is a right-continuous step function of price over virtual time for
// one instance type in one availability zone, mirroring the AWS spot price
// histories the paper analyzes (§2.2, Fig. 3). The package provides a CSV
// codec, a calibrated synthetic generator (the repo's substitute for the
// proprietary 2016 AWS traces), and the historical eviction-probability
// estimation BidBrain trains on (§4.1): for a given bid delta over the
// current market price, the probability β of being evicted within the
// billing hour, and the median time to eviction.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Point is one price change: the trace holds Price from At until the next
// point's At.
type Point struct {
	At    time.Duration
	Price float64 // dollars per instance-hour
}

// Trace is a price history for one instance type in one zone.
//
// The Points slice and the lazily-built prefix-sum integral are
// read-only after construction, so one Trace may be shared across
// goroutines (each holding its own Cursor).
type Trace struct {
	InstanceType string
	Zone         string
	Points       []Point

	// integral[i] is ∫ price dt over [Points[0].At, Points[i].At] in
	// dollar·nanoseconds, accumulated left to right — the identical
	// summation order the stepwise MeanPrice/ComputeStats loops used, so
	// whole-trace means are bit-for-bit unchanged. Built on first use.
	integralOnce sync.Once
	integral     []float64
}

// Validate checks the structural invariants: at least one point, the first
// at time zero, strictly increasing times, positive prices.
func (tr *Trace) Validate() error {
	if len(tr.Points) == 0 {
		return fmt.Errorf("trace %s/%s: no points", tr.InstanceType, tr.Zone)
	}
	if tr.Points[0].At != 0 {
		return fmt.Errorf("trace %s/%s: first point at %v, want 0", tr.InstanceType, tr.Zone, tr.Points[0].At)
	}
	for i, p := range tr.Points {
		if p.Price <= 0 {
			return fmt.Errorf("trace %s/%s: non-positive price %v at index %d", tr.InstanceType, tr.Zone, p.Price, i)
		}
		if i > 0 && p.At <= tr.Points[i-1].At {
			return fmt.Errorf("trace %s/%s: non-increasing time at index %d", tr.InstanceType, tr.Zone, i)
		}
	}
	return nil
}

// Duration reports the time of the last price change. Prices beyond it are
// taken as the final price.
func (tr *Trace) Duration() time.Duration {
	if len(tr.Points) == 0 {
		return 0
	}
	return tr.Points[len(tr.Points)-1].At
}

// PriceAt returns the market price in effect at time t. Times before the
// first point return the first price.
func (tr *Trace) PriceAt(t time.Duration) float64 {
	// Find the last point with At <= t.
	i := sort.Search(len(tr.Points), func(i int) bool { return tr.Points[i].At > t })
	if i == 0 {
		return tr.Points[0].Price
	}
	return tr.Points[i-1].Price
}

// NextChange returns the time of the first price change strictly after t,
// and false if none remains.
func (tr *Trace) NextChange(t time.Duration) (time.Duration, bool) {
	i := sort.Search(len(tr.Points), func(i int) bool { return tr.Points[i].At > t })
	if i >= len(tr.Points) {
		return 0, false
	}
	return tr.Points[i].At, true
}

// FirstCrossingAbove returns the earliest time in (from, horizon] at which
// the price strictly exceeds threshold, and false if it never does. This is
// the eviction condition: a spot instance is revoked when the market price
// rises above the customer's bid (§2.2).
func (tr *Trace) FirstCrossingAbove(threshold float64, from, horizon time.Duration) (time.Duration, bool) {
	if tr.PriceAt(from) > threshold {
		return from, true
	}
	t := from
	for {
		next, ok := tr.NextChange(t)
		if !ok || next > horizon {
			return 0, false
		}
		if tr.PriceAt(next) > threshold {
			return next, true
		}
		t = next
	}
}

// prefixIntegral returns the lazily-built cumulative price integral.
// Safe for concurrent first use (sync.Once).
func (tr *Trace) prefixIntegral() []float64 {
	tr.integralOnce.Do(func() {
		cum := make([]float64, len(tr.Points))
		var sum float64
		for i := 0; i+1 < len(tr.Points); i++ {
			sum += tr.Points[i].Price * float64(tr.Points[i+1].At-tr.Points[i].At)
			cum[i+1] = sum
		}
		tr.integral = cum
	})
	return tr.integral
}

// IntegralTo reports ∫ price dt from the first point's time to t, in
// dollar·nanoseconds, treating the price before the first point as the
// first price (times before the first point therefore contribute a
// negative term). One binary search plus an O(1) correction.
func (tr *Trace) IntegralTo(t time.Duration) float64 {
	cum := tr.prefixIntegral()
	i := sort.Search(len(tr.Points), func(i int) bool { return tr.Points[i].At > t })
	if i > 0 {
		i--
	}
	return cum[i] + tr.Points[i].Price*float64(t-tr.Points[i].At)
}

// MeanPrice returns the time-weighted mean price over [from, to] as a
// difference of two prefix-sum integrals: O(log n) per query instead of
// a stepwise walk over every price change in the window.
func (tr *Trace) MeanPrice(from, to time.Duration) float64 {
	if to <= from {
		return tr.PriceAt(from)
	}
	return (tr.IntegralTo(to) - tr.IntegralTo(from)) / float64(to-from)
}

// Set bundles traces for several instance types in one zone, as BidBrain
// monitors multiple markets that move relatively independently (§1).
type Set struct {
	Zone   string
	Traces map[string]*Trace // keyed by instance type
}

// NewSet returns an empty trace set for the zone.
func NewSet(zone string) *Set {
	return &Set{Zone: zone, Traces: make(map[string]*Trace)}
}

// Add inserts a trace, replacing any previous trace for the same type.
func (s *Set) Add(tr *Trace) { s.Traces[tr.InstanceType] = tr }

// Get returns the trace for an instance type and whether it exists.
func (s *Set) Get(instanceType string) (*Trace, bool) {
	tr, ok := s.Traces[instanceType]
	return tr, ok
}

// Types returns the instance types present, sorted for determinism.
func (s *Set) Types() []string {
	out := make([]string, 0, len(s.Traces))
	for k := range s.Traces {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Duration reports the shortest trace duration in the set, i.e. the horizon
// over which every market has data.
func (s *Set) Duration() time.Duration {
	var min time.Duration
	first := true
	for _, tr := range s.Traces {
		d := tr.Duration()
		if first || d < min {
			min, first = d, false
		}
	}
	return min
}

// GenConfig parameterizes the synthetic price process. The process is a
// regime-switching model calibrated to the qualitative structure of Fig. 3:
// a quiet regime where the spot price hovers at a deep discount off the
// on-demand price with small jitter, punctuated by spike bursts that climb
// above the on-demand price (sometimes far above) and then collapse back.
type GenConfig struct {
	OnDemand      float64       // on-demand $/hr for this type
	BaseDiscount  float64       // quiet-regime mean as a fraction of on-demand (e.g. 0.25)
	Jitter        float64       // relative jitter of quiet-regime steps (e.g. 0.08)
	StepEvery     time.Duration // mean interval between price changes
	SpikesPerDay  float64       // mean spike bursts per day
	SpikeDuration time.Duration // mean spike duration
	SpikeHeight   float64       // mean spike peak as multiple of on-demand (>1)
}

// DefaultGenConfig returns parameters matching the paper's observation that
// spot runs at a 70–80 % discount with intermittent spikes above on-demand.
func DefaultGenConfig(onDemand float64) GenConfig {
	return GenConfig{
		OnDemand:      onDemand,
		BaseDiscount:  0.25,
		Jitter:        0.08,
		StepEvery:     10 * time.Minute,
		SpikesPerDay:  5,
		SpikeDuration: 25 * time.Minute,
		SpikeHeight:   2.0,
	}
}

// Generate produces a synthetic trace of the given duration using cfg and a
// deterministic rng. The same seed always yields the same trace.
func Generate(instanceType, zone string, duration time.Duration, cfg GenConfig, rng *rand.Rand) *Trace {
	if cfg.OnDemand <= 0 {
		panic("trace: GenConfig.OnDemand must be positive")
	}
	if cfg.StepEvery <= 0 {
		panic("trace: GenConfig.StepEvery must be positive")
	}
	tr := &Trace{InstanceType: instanceType, Zone: zone}
	base := cfg.OnDemand * cfg.BaseDiscount

	// Pre-draw spike windows as (start, end, peak).
	type spike struct {
		start, end time.Duration
		peak       float64
	}
	var spikes []spike
	days := duration.Hours() / 24
	nSpikes := poisson(rng, cfg.SpikesPerDay*days)
	for i := 0; i < nSpikes; i++ {
		start := time.Duration(rng.Float64() * float64(duration))
		dur := time.Duration((0.5 + rng.ExpFloat64()) * float64(cfg.SpikeDuration))
		peak := cfg.OnDemand * cfg.SpikeHeight * (0.6 + 0.8*rng.Float64())
		spikes = append(spikes, spike{start, start + dur, peak})
	}
	sort.Slice(spikes, func(i, j int) bool { return spikes[i].start < spikes[j].start })

	// Price queries arrive in non-decreasing time order, so instead of
	// scanning every spike per query (O(spikes) each — a double-digit
	// share of a profiled experiment run), sweep an index over the
	// sorted spikes and keep the currently-open ones in a small active
	// list. The active list preserves start order, so the first match is
	// the same spike the full scan would have found, and the rng draw
	// sequence — one draw per price query — is untouched.
	var active []spike
	spikeIdx := 0
	inSpike := func(t time.Duration) (float64, bool) {
		for spikeIdx < len(spikes) && spikes[spikeIdx].start <= t {
			active = append(active, spikes[spikeIdx])
			spikeIdx++
		}
		k := 0
		for _, sp := range active {
			if t < sp.end {
				active[k] = sp
				k++
			}
		}
		active = active[:k]
		if len(active) > 0 {
			return active[0].peak, true
		}
		return 0, false
	}

	price := func(t time.Duration) float64 {
		if peak, ok := inSpike(t); ok {
			// Within a spike, jitter around the peak.
			p := peak * (0.9 + 0.2*rng.Float64())
			if p < base {
				p = base
			}
			return round4(p)
		}
		p := base * (1 + cfg.Jitter*(2*rng.Float64()-1))
		if p <= 0 {
			p = base
		}
		return round4(p)
	}

	// Merged sorted spike boundaries: the per-step clamp below needs only
	// the first boundary strictly after t, so a monotone index over this
	// list replaces the original min-scan over every spike.
	bounds := make([]time.Duration, 0, 2*len(spikes))
	for _, sp := range spikes {
		bounds = append(bounds, sp.start, sp.end)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	boundIdx := 0

	// Expected points: one per mean step interval, plus the forced spike
	// boundaries. Capacity only; growth still works if the draw runs hot.
	tr.Points = make([]Point, 0, int(duration/cfg.StepEvery)+len(bounds)+2)

	t := time.Duration(0)
	tr.Points = append(tr.Points, Point{At: 0, Price: price(0)})
	for t < duration {
		// Exponential inter-arrival of price changes; spikes force extra
		// boundary points so crossings are sharp.
		step := time.Duration(rng.ExpFloat64() * float64(cfg.StepEvery))
		if step < time.Minute {
			step = time.Minute
		}
		next := t + step
		for boundIdx < len(bounds) && bounds[boundIdx] <= t {
			boundIdx++
		}
		if boundIdx < len(bounds) && bounds[boundIdx] < next {
			next = bounds[boundIdx]
		}
		if next > duration {
			break
		}
		tr.Points = append(tr.Points, Point{At: next, Price: price(next)})
		t = next
	}
	return tr
}

// GenerateSet produces traces for every (type, on-demand price) pair in
// catalog, seeding each type's rng independently so traces move
// independently, as the paper notes real markets do.
func GenerateSet(zone string, duration time.Duration, catalog map[string]float64, seed int64) *Set {
	s := NewSet(zone)
	types := make([]string, 0, len(catalog))
	for t := range catalog {
		types = append(types, t)
	}
	sort.Strings(types)
	for i, t := range types {
		rng := rand.New(rand.NewSource(seed + int64(i)*7919))
		s.Add(Generate(t, zone, duration, DefaultGenConfig(catalog[t]), rng))
	}
	return s
}

func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Knuth's algorithm; mean values here are small (spikes per trace).
	l := 1.0
	limit := math.Exp(-mean)
	k := 0
	for {
		l *= rng.Float64()
		if l <= limit {
			return k
		}
		k++
		if k > 10000 {
			return k // defensive bound
		}
	}
}

func round4(p float64) float64 {
	return float64(int64(p*10000+0.5)) / 10000
}
