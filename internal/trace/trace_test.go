package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func mkTrace(points ...Point) *Trace {
	return &Trace{InstanceType: "c4.xlarge", Zone: "us-east-1a", Points: points}
}

func TestValidate(t *testing.T) {
	good := mkTrace(Point{0, 0.05}, Point{time.Hour, 0.06})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	cases := []*Trace{
		mkTrace(),
		mkTrace(Point{time.Minute, 0.05}),
		mkTrace(Point{0, 0.05}, Point{0, 0.06}),
		mkTrace(Point{0, -1}),
	}
	for i, tr := range cases {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: invalid trace accepted", i)
		}
	}
}

func TestPriceAtStepFunction(t *testing.T) {
	tr := mkTrace(Point{0, 0.10}, Point{time.Hour, 0.20}, Point{2 * time.Hour, 0.15})
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 0.10},
		{30 * time.Minute, 0.10},
		{time.Hour, 0.20},
		{90 * time.Minute, 0.20},
		{2 * time.Hour, 0.15},
		{100 * time.Hour, 0.15},
	}
	for _, c := range cases {
		if got := tr.PriceAt(c.at); got != c.want {
			t.Errorf("PriceAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestNextChange(t *testing.T) {
	tr := mkTrace(Point{0, 0.1}, Point{time.Hour, 0.2})
	if at, ok := tr.NextChange(0); !ok || at != time.Hour {
		t.Fatalf("NextChange(0) = %v,%v", at, ok)
	}
	if _, ok := tr.NextChange(time.Hour); ok {
		t.Fatal("NextChange past last point should be false")
	}
}

func TestFirstCrossingAbove(t *testing.T) {
	tr := mkTrace(
		Point{0, 0.10},
		Point{10 * time.Minute, 0.50}, // spike
		Point{20 * time.Minute, 0.10},
	)
	// Bid above spike: never evicted.
	if _, ok := tr.FirstCrossingAbove(0.60, 0, time.Hour); ok {
		t.Fatal("crossing found above the maximum price")
	}
	// Bid below spike: evicted at the spike start.
	at, ok := tr.FirstCrossingAbove(0.30, 0, time.Hour)
	if !ok || at != 10*time.Minute {
		t.Fatalf("crossing = %v,%v, want 10m,true", at, ok)
	}
	// Already above at start: immediate.
	at, ok = tr.FirstCrossingAbove(0.05, 0, time.Hour)
	if !ok || at != 0 {
		t.Fatalf("immediate crossing = %v,%v, want 0,true", at, ok)
	}
	// Horizon excludes the spike.
	if _, ok := tr.FirstCrossingAbove(0.30, 0, 5*time.Minute); ok {
		t.Fatal("crossing found beyond horizon")
	}
}

func TestMeanPrice(t *testing.T) {
	tr := mkTrace(Point{0, 0.10}, Point{time.Hour, 0.30})
	got := tr.MeanPrice(0, 2*time.Hour)
	if got != 0.20 {
		t.Fatalf("MeanPrice = %v, want 0.20", got)
	}
	if tr.MeanPrice(time.Hour, time.Hour) != 0.30 {
		t.Fatal("degenerate interval should return the point price")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig(0.419)
	a := Generate("c4.2xlarge", "z", 48*time.Hour, cfg, rand.New(rand.NewSource(1)))
	b := Generate("c4.2xlarge", "z", 48*time.Hour, cfg, rand.New(rand.NewSource(1)))
	if len(a.Points) != len(b.Points) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs: %v vs %v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestGenerateCalibration(t *testing.T) {
	// The synthetic process must reproduce the paper's market structure:
	// ~70-80% discount most of the time, with spikes above on-demand.
	onDemand := 0.419
	tr := Generate("c4.2xlarge", "z", 14*24*time.Hour, DefaultGenConfig(onDemand), rand.New(rand.NewSource(42)))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	mean := tr.MeanPrice(0, tr.Duration())
	if mean < 0.15*onDemand || mean > 0.55*onDemand {
		t.Fatalf("mean price %.4f not a deep discount off on-demand %.4f", mean, onDemand)
	}
	sawSpike := false
	for _, p := range tr.Points {
		if p.Price > onDemand {
			sawSpike = true
			break
		}
	}
	if !sawSpike {
		t.Fatal("two weeks of trace produced no spike above on-demand")
	}
}

func TestGenerateSetIndependence(t *testing.T) {
	catalog := map[string]float64{"c4.xlarge": 0.209, "c4.2xlarge": 0.419}
	s := GenerateSet("us-east-1a", 24*time.Hour, catalog, 5)
	if len(s.Types()) != 2 {
		t.Fatalf("Types = %v", s.Types())
	}
	a, _ := s.Get("c4.xlarge")
	b, _ := s.Get("c4.2xlarge")
	// Traces for different types must differ (independent rngs).
	if len(a.Points) == len(b.Points) {
		same := true
		for i := range a.Points {
			if a.Points[i].At != b.Points[i].At {
				same = false
				break
			}
		}
		if same {
			t.Fatal("traces for different types are time-identical")
		}
	}
	if s.Duration() <= 0 {
		t.Fatal("set duration should be positive")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := Generate("c4.xlarge", "us-east-1b", 6*time.Hour, DefaultGenConfig(0.209), rand.New(rand.NewSource(9)))
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("got %d traces, want 1", len(back))
	}
	got := back[0]
	if got.InstanceType != tr.InstanceType || got.Zone != tr.Zone {
		t.Fatalf("identity mismatch: %s/%s", got.InstanceType, got.Zone)
	}
	if len(got.Points) != len(tr.Points) {
		t.Fatalf("points: %d vs %d", len(got.Points), len(tr.Points))
	}
	for i := range got.Points {
		if got.Points[i] != tr.Points[i] {
			t.Fatalf("point %d: %v vs %v", i, got.Points[i], tr.Points[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus,header\n",
		"instance_type,zone,at_ns,price\nc4,z,notanumber,0.1\n",
		"instance_type,zone,at_ns,price\nc4,z,0,notanumber\n",
		"instance_type,zone,at_ns,price\nc4,z,60,0.1\n", // first point not at 0
	}
	for i, c := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(c)); err == nil {
			t.Errorf("case %d: bad CSV accepted", i)
		}
	}
}

func TestReadCSVMultipleTraces(t *testing.T) {
	in := "instance_type,zone,at_ns,price\n" +
		"a,z,0,0.1\n" +
		"b,z,0,0.2\n" +
		"a,z,60,0.15\n"
	traces, err := ReadCSV(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	if traces[0].InstanceType != "a" || len(traces[0].Points) != 2 {
		t.Fatalf("first trace wrong: %+v", traces[0])
	}
}

func TestEstimateEvictionMonotone(t *testing.T) {
	// Higher bid deltas must not increase eviction probability.
	tr := Generate("c4.xlarge", "z", 30*24*time.Hour, DefaultGenConfig(0.209), rand.New(rand.NewSource(3)))
	rngA := rand.New(rand.NewSource(11))
	rngB := rand.New(rand.NewSource(11))
	low := EstimateEviction(tr, 0.0001, 500, rngA)
	high := EstimateEviction(tr, 0.4, 500, rngB)
	if high.Beta > low.Beta {
		t.Fatalf("beta(0.4)=%v > beta(0.0001)=%v", high.Beta, low.Beta)
	}
	if low.Beta <= 0 {
		t.Fatal("bidding at-market over a month should see some evictions")
	}
	if high.Beta > 0.3 {
		t.Fatalf("bidding $0.40 over market evicted %v of the time", high.Beta)
	}
}

func TestBetaTableInterpolation(t *testing.T) {
	tr := Generate("c4.xlarge", "z", 30*24*time.Hour, DefaultGenConfig(0.209), rand.New(rand.NewSource(4)))
	bt := BuildBetaTable(tr, DefaultDeltas(), 300, 17)
	// Clamping at the ends.
	if bt.Beta(-1) != bt.Stats[0].Beta {
		t.Fatal("below-grid delta should clamp to first stat")
	}
	if bt.Beta(99) != bt.Stats[len(bt.Stats)-1].Beta {
		t.Fatal("above-grid delta should clamp to last stat")
	}
	// Interpolated values lie between neighbors.
	mid := bt.Beta(0.03) // between 0.02 and 0.05
	lo, hi := bt.Stats[5].Beta, bt.Stats[4].Beta
	if lo > hi {
		lo, hi = hi, lo
	}
	if mid < lo-1e-12 || mid > hi+1e-12 {
		t.Fatalf("interpolated beta %v outside [%v, %v]", mid, lo, hi)
	}
	if bt.MedianTTE(0.0001) <= 0 {
		t.Fatal("median TTE should be positive")
	}
}

func TestBuildBetaTableRejectsUnsorted(t *testing.T) {
	tr := mkTrace(Point{0, 0.1})
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted deltas did not panic")
		}
	}()
	BuildBetaTable(tr, []float64{0.4, 0.1}, 10, 1)
}

// Property: PriceAt always returns one of the trace's prices, and
// MeanPrice lies within [min, max] of the trace.
func TestPropertyPriceBounds(t *testing.T) {
	tr := Generate("c4.xlarge", "z", 72*time.Hour, DefaultGenConfig(0.209), rand.New(rand.NewSource(8)))
	min, max := tr.Points[0].Price, tr.Points[0].Price
	prices := make(map[float64]bool)
	for _, p := range tr.Points {
		prices[p.Price] = true
		if p.Price < min {
			min = p.Price
		}
		if p.Price > max {
			max = p.Price
		}
	}
	f := func(rawFrom, rawLen uint32) bool {
		from := time.Duration(rawFrom) % tr.Duration()
		length := time.Duration(rawLen) % (6 * time.Hour)
		if !prices[tr.PriceAt(from)] {
			return false
		}
		m := tr.MeanPrice(from, from+length)
		return m >= min-1e-9 && m <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
