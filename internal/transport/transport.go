// Package transport provides the in-process message fabric AgileML
// processes communicate over.
//
// The paper's implementation connects processes with ZMQ sockets; this
// reproduction substitutes an in-memory fabric with the same shape: named
// endpoints, asynchronous one-way messages, per-endpoint mailboxes, and
// byte accounting so experiments can reason about network load. Tests can
// inject message drops and unreachable endpoints to exercise failure
// handling.
package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Addr names an endpoint on the fabric.
type Addr string

// Message is one delivered datagram. Payload is an application value
// passed by reference (in-process fabric); Size is the number of bytes
// this message would occupy on a real wire and is what the byte counters
// accumulate.
type Message struct {
	From    Addr
	To      Addr
	Kind    string
	Payload any
	Size    int
}

// Network is an in-process fabric connecting endpoints. It is safe for
// concurrent use.
type Network struct {
	mu        sync.Mutex
	endpoints map[Addr]*Endpoint
	dropFn    func(Message) bool

	bytesSent atomic.Int64
	msgsSent  atomic.Int64
	dropped   atomic.Int64
}

// NewNetwork returns an empty fabric.
func NewNetwork() *Network {
	return &Network{endpoints: make(map[Addr]*Endpoint)}
}

// SetDropFunc installs a fault-injection predicate: messages for which fn
// returns true are silently dropped, as a lossy or partitioned network
// would. Pass nil to clear.
func (n *Network) SetDropFunc(fn func(Message) bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropFn = fn
}

// BytesSent reports total payload bytes accepted for delivery.
func (n *Network) BytesSent() int64 { return n.bytesSent.Load() }

// MessagesSent reports total messages accepted for delivery.
func (n *Network) MessagesSent() int64 { return n.msgsSent.Load() }

// Dropped reports messages discarded by the drop predicate.
func (n *Network) Dropped() int64 { return n.dropped.Load() }

// Listen registers an endpoint with a mailbox of the given capacity.
// Registering an address twice is an error.
func (n *Network) Listen(addr Addr, mailbox int) (*Endpoint, error) {
	if mailbox <= 0 {
		return nil, fmt.Errorf("transport: mailbox capacity %d must be positive", mailbox)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.endpoints[addr]; ok {
		return nil, fmt.Errorf("transport: address %q already in use", addr)
	}
	ep := &Endpoint{
		addr: addr,
		net:  n,
		in:   make(chan Message, mailbox),
	}
	n.endpoints[addr] = ep
	return ep, nil
}

// lookup returns the endpoint for addr, or nil.
func (n *Network) lookup(addr Addr) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.endpoints[addr]
}

// remove unregisters the endpoint if it is still the one registered.
func (n *Network) remove(ep *Endpoint) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cur, ok := n.endpoints[ep.addr]; ok && cur == ep {
		delete(n.endpoints, ep.addr)
	}
}

// Endpoint is one party on the fabric. Receive from Inbox; send with Send.
type Endpoint struct {
	addr   Addr
	net    *Network
	in     chan Message
	closed atomic.Bool
}

// Addr returns the endpoint's address.
func (e *Endpoint) Addr() Addr { return e.addr }

// Inbox returns the receive channel. It is closed when the endpoint
// closes, so `for msg := range ep.Inbox()` is the standard receive loop.
func (e *Endpoint) Inbox() <-chan Message { return e.in }

// Send delivers a message to the endpoint at to. It blocks if the
// destination mailbox is full (backpressure, as TCP would apply) and
// returns an error if the destination does not exist or has closed —
// the caller's signal that the peer is gone.
func (e *Endpoint) Send(to Addr, kind string, payload any, size int) error {
	if e.closed.Load() {
		return fmt.Errorf("transport: send from closed endpoint %q", e.addr)
	}
	msg := Message{From: e.addr, To: to, Kind: kind, Payload: payload, Size: size}

	e.net.mu.Lock()
	dropFn := e.net.dropFn
	dst := e.net.endpoints[to]
	e.net.mu.Unlock()

	if dropFn != nil && dropFn(msg) {
		e.net.dropped.Add(1)
		return nil // dropped silently, like a lossy wire
	}
	if dst == nil {
		return fmt.Errorf("transport: %w: %q", ErrUnreachable, to)
	}
	if err := dst.deliver(msg); err != nil {
		return err
	}
	e.net.bytesSent.Add(int64(size))
	e.net.msgsSent.Add(1)
	return nil
}

// ErrUnreachable reports a send to an address with no live endpoint.
var ErrUnreachable = fmt.Errorf("unreachable address")

func (e *Endpoint) deliver(msg Message) (err error) {
	// A concurrent Close can close e.in while we block in the send;
	// recover converts that race into an unreachable error instead of a
	// crash, matching a packet arriving at a just-closed socket.
	defer func() {
		if recover() != nil {
			err = fmt.Errorf("transport: %w: %q closed during delivery", ErrUnreachable, msg.To)
		}
	}()
	if e.closed.Load() {
		return fmt.Errorf("transport: %w: %q", ErrUnreachable, msg.To)
	}
	e.in <- msg
	return nil
}

// Close unregisters the endpoint and closes its inbox. Idempotent.
// Messages already queued remain readable until drained; subsequent sends
// to this address fail with ErrUnreachable.
func (e *Endpoint) Close() {
	if e.closed.Swap(true) {
		return
	}
	e.net.remove(e)
	close(e.in)
}
