package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestListenAndSend(t *testing.T) {
	n := NewNetwork()
	a, err := n.Listen("a", 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Listen("b", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", "hello", 42, 100); err != nil {
		t.Fatal(err)
	}
	msg := <-b.Inbox()
	if msg.From != "a" || msg.To != "b" || msg.Kind != "hello" || msg.Payload.(int) != 42 || msg.Size != 100 {
		t.Fatalf("msg = %+v", msg)
	}
	if n.BytesSent() != 100 || n.MessagesSent() != 1 {
		t.Fatalf("counters = %d bytes, %d msgs", n.BytesSent(), n.MessagesSent())
	}
}

func TestDuplicateListen(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Listen("a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a", 1); err == nil {
		t.Fatal("duplicate address accepted")
	}
}

func TestZeroMailboxRejected(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Listen("a", 0); err == nil {
		t.Fatal("zero-capacity mailbox accepted")
	}
}

func TestSendToUnknownAddress(t *testing.T) {
	n := NewNetwork()
	a, _ := n.Listen("a", 1)
	err := a.Send("ghost", "k", nil, 1)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestCloseMakesUnreachable(t *testing.T) {
	n := NewNetwork()
	a, _ := n.Listen("a", 1)
	b, _ := n.Listen("b", 1)
	b.Close()
	if err := a.Send("b", "k", nil, 1); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	// Sending from a closed endpoint also fails.
	a.Close()
	if err := a.Send("b", "k", nil, 1); err == nil {
		t.Fatal("send from closed endpoint accepted")
	}
	a.Close() // idempotent
}

func TestInboxClosedAfterClose(t *testing.T) {
	n := NewNetwork()
	a, _ := n.Listen("a", 2)
	b, _ := n.Listen("b", 2)
	b.Send("a", "k", 1, 1)
	a.Close()
	// Queued message still readable, then channel closes.
	msg, ok := <-a.Inbox()
	if !ok || msg.Payload.(int) != 1 {
		t.Fatalf("queued message lost: %v %v", msg, ok)
	}
	if _, ok := <-a.Inbox(); ok {
		t.Fatal("inbox not closed after drain")
	}
}

func TestAddressReuseAfterClose(t *testing.T) {
	n := NewNetwork()
	a1, _ := n.Listen("a", 1)
	a1.Close()
	a2, err := n.Listen("a", 1)
	if err != nil {
		t.Fatalf("address not reusable after close: %v", err)
	}
	b, _ := n.Listen("b", 1)
	if err := b.Send("a", "k", nil, 1); err != nil {
		t.Fatal(err)
	}
	if msg := <-a2.Inbox(); msg.Kind != "k" {
		t.Fatalf("msg = %+v", msg)
	}
}

func TestDropInjection(t *testing.T) {
	n := NewNetwork()
	a, _ := n.Listen("a", 4)
	b, _ := n.Listen("b", 4)
	n.SetDropFunc(func(m Message) bool { return m.Kind == "lossy" })
	if err := a.Send("b", "lossy", nil, 10); err != nil {
		t.Fatalf("dropped send errored: %v", err)
	}
	if err := a.Send("b", "ok", nil, 10); err != nil {
		t.Fatal(err)
	}
	if n.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", n.Dropped())
	}
	msg := <-b.Inbox()
	if msg.Kind != "ok" {
		t.Fatalf("got %q, want the non-dropped message", msg.Kind)
	}
	// Dropped messages do not count as sent bytes.
	if n.BytesSent() != 10 {
		t.Fatalf("BytesSent = %d, want 10", n.BytesSent())
	}
	n.SetDropFunc(nil)
	if err := a.Send("b", "lossy", nil, 1); err != nil {
		t.Fatal(err)
	}
	if msg := <-b.Inbox(); msg.Kind != "lossy" {
		t.Fatal("drop predicate not cleared")
	}
}

func TestConcurrentSenders(t *testing.T) {
	n := NewNetwork()
	dst, _ := n.Listen("dst", 1024)
	const senders, each = 8, 100
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		ep, err := n.Listen(Addr(fmt.Sprintf("s%d", s)), 1)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := ep.Send("dst", "m", i, 8); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	got := 0
	for got < senders*each {
		select {
		case <-dst.Inbox():
			got++
		case <-done:
			for range dst.Inbox() {
				got++
				if got == senders*each {
					break
				}
			}
		}
	}
	wg.Wait()
	if n.MessagesSent() != senders*each {
		t.Fatalf("MessagesSent = %d, want %d", n.MessagesSent(), senders*each)
	}
	if n.BytesSent() != senders*each*8 {
		t.Fatalf("BytesSent = %d", n.BytesSent())
	}
}

func TestBackpressureBlocksThenDelivers(t *testing.T) {
	n := NewNetwork()
	a, _ := n.Listen("a", 1)
	b, _ := n.Listen("b", 1)
	if err := a.Send("b", "first", nil, 1); err != nil {
		t.Fatal(err)
	}
	delivered := make(chan error, 1)
	go func() { delivered <- a.Send("b", "second", nil, 1) }()
	// Drain one to free the mailbox slot; the blocked send completes.
	<-b.Inbox()
	if err := <-delivered; err != nil {
		t.Fatal(err)
	}
	if msg := <-b.Inbox(); msg.Kind != "second" {
		t.Fatalf("got %q", msg.Kind)
	}
}
