package wal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"strconv"
	"sync"
)

// This file is the recovery fast path: a pooled, zero-copy segment
// scanner and a hand-rolled decoder for the canonical frame encoding.
//
// The determinism contract: recovery's output is defined by the
// reference decoder (decodeFrame — CRC check plus encoding/json). The
// fast decoder accepts a line only when it is byte-for-byte in the
// canonical shape journal.MarshalLine emits for a flat Record (fixed
// key order, no nested job/meta object, JSON-grammar numbers, escape-
// free ASCII strings); everything else — submit and meta records,
// hand-edited logs, foreign writers — falls back to encoding/json on
// the same payload. A line the fast parser does accept decodes to the
// identical Record the reference would produce (FuzzDecodeFrame pins
// this), so recovery at any worker count, over any layout, folds the
// same record stream in the same order as the serial reference.

// maxRecordBytes mirrors the journal package's per-line bound; the
// scanner-based reference path fails with bufio.ErrTooLong past it.
const maxRecordBytes = 1 << 20

// minLinesPerWorker keeps tiny segments on the serial path — goroutine
// fan-out costs more than decoding a handful of records.
const minLinesPerWorker = 64

// segScratch holds one segment's read buffer and decode slots, pooled
// across segments and recoveries so steady-state recovery allocates
// only what the records themselves need.
type segScratch struct {
	data  []byte
	lines [][]byte
	recs  []Record
	oks   []bool
}

var segPool = sync.Pool{New: func() any { return new(segScratch) }}

// load reads the whole segment into the pooled buffer. Segments are
// bounded by Options.SegmentBytes, so whole-file reads are cheap and
// let the decode stage work over stable zero-copy slices.
func (sb *segScratch) load(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	n := int(st.Size())
	if cap(sb.data) < n {
		sb.data = make([]byte, n)
	}
	sb.data = sb.data[:n]
	if _, err := io.ReadFull(f, sb.data); err != nil {
		return err
	}
	return nil
}

// split cuts the buffer into non-empty lines in place, mirroring
// bufio.ScanLines (trailing '\r' dropped, final unterminated line kept,
// empty lines skipped). An over-long line stops the split and is
// surfaced as the scanner's error, after the preceding records have
// been folded — exactly where the streaming reference would fail.
func (sb *segScratch) split() error {
	sb.lines = sb.lines[:0]
	data := sb.data
	for len(data) > 0 {
		var line []byte
		if j := bytes.IndexByte(data, '\n'); j >= 0 {
			line, data = data[:j], data[j+1:]
		} else {
			line, data = data, nil
		}
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if len(line) > maxRecordBytes {
			return bufio.ErrTooLong
		}
		if len(line) == 0 {
			continue
		}
		sb.lines = append(sb.lines, line)
	}
	return nil
}

// decode fills recs/oks for every line, fanning out across workers when
// the segment is big enough to pay for it. Slots are indexed, so the
// fold that follows consumes them in exact file order regardless of
// which worker decoded what.
func (sb *segScratch) decode(workers int) {
	n := len(sb.lines)
	if cap(sb.recs) < n {
		sb.recs = make([]Record, n)
		sb.oks = make([]bool, n)
	}
	sb.recs = sb.recs[:n]
	sb.oks = sb.oks[:n]
	if max := n / minLinesPerWorker; workers > max {
		workers = max
	}
	if workers <= 1 {
		for i, line := range sb.lines {
			sb.recs[i], sb.oks[i] = decodeFrameFast(line)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				sb.recs[i], sb.oks[i] = decodeFrameFast(sb.lines[i])
			}
		}(lo, hi)
	}
	wg.Wait()
}

// release returns the scratch to the pool, dropping record pointers so
// pooled slots never pin job specs from a prior recovery.
func (sb *segScratch) release() {
	for i := range sb.recs {
		sb.recs[i] = Record{}
	}
	sb.data = sb.data[:0]
	sb.lines = sb.lines[:0]
	sb.recs = sb.recs[:0]
	sb.oks = sb.oks[:0]
	segPool.Put(sb)
}

// RecoverOptions tunes the decode stage of recovery.
type RecoverOptions struct {
	// Workers caps the parallel frame-decode workers. 0 picks
	// GOMAXPROCS; 1 decodes serially. The replay is bit-identical at
	// every setting — workers only fill indexed slots that a serial
	// fold then consumes in file order.
	Workers int
}

// RecoverWith is Recover with explicit decode options.
func RecoverWith(dir string, opts RecoverOptions) (*Replay, error) {
	r, _, err := recoverDir(dir, false, opts.Workers)
	return r, err
}

// decodeFrameFast parses one "crc payload" line like decodeFrame, but
// checksums the raw slice (no string conversion) and tries the
// hand-rolled canonical decoder before paying for encoding/json.
func decodeFrameFast(line []byte) (Record, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return Record{}, false
	}
	want, ok := parseHex8(line[:8])
	if !ok {
		return Record{}, false
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != want {
		return Record{}, false
	}
	if rec, handled := decodeRecordFast(payload); handled {
		return rec, true
	}
	var rec Record
	if json.Unmarshal(payload, &rec) != nil {
		return rec, false
	}
	return rec, true
}

// parseHex8 decodes exactly eight hex digits, matching
// strconv.ParseUint(s, 16, 32) on the frame's fixed-width field
// without allocating the intermediate string.
func parseHex8(b []byte) (uint32, bool) {
	var v uint32
	for _, c := range b {
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint32(c-'A') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// decodeRecordFast decodes the dominant record kinds — tick and the
// lease/transition family — straight from the canonical byte shape
// journal.MarshalLine produces:
//
//	{"seq":N,"kind":"K"[,"at_ns":N],"job_id":N[,"alloc":N][,"cores":N][,"amount":F][,"detail":"S"]}
//
// handled is false for anything else (nested job/meta objects, escaped
// or non-ASCII strings, non-canonical numbers or key order, trailing
// whitespace), telling the caller to decode with encoding/json instead.
// Strictness is the correctness argument: a payload this parser accepts
// is one encoding/json decodes to the identical Record.
func decodeRecordFast(p []byte) (Record, bool) {
	var rec Record
	p, ok := eat(p, `{"seq":`)
	if !ok {
		return rec, false
	}
	rec.Seq, p, ok = fastUint(p)
	if !ok {
		return rec, false
	}
	p, ok = eat(p, `,"kind":"`)
	if !ok {
		return rec, false
	}
	var kind []byte
	kind, p, ok = fastStringBytes(p)
	if !ok {
		return rec, false
	}
	rec.Kind = internKind(kind)
	if rest, have := eat(p, `,"at_ns":`); have {
		if rec.AtNs, p, ok = fastInt(rest); !ok {
			return rec, false
		}
	}
	p, ok = eat(p, `,"job_id":`)
	if !ok {
		return rec, false
	}
	var n int64
	if n, p, ok = fastInt(p); !ok {
		return rec, false
	}
	rec.JobID = int(n)
	if rest, have := eat(p, `,"alloc":`); have {
		if n, p, ok = fastInt(rest); !ok {
			return rec, false
		}
		rec.Alloc = int(n)
	}
	if rest, have := eat(p, `,"cores":`); have {
		if n, p, ok = fastInt(rest); !ok {
			return rec, false
		}
		rec.Cores = int(n)
	}
	if rest, have := eat(p, `,"amount":`); have {
		if rec.Amount, p, ok = fastFloat(rest); !ok {
			return rec, false
		}
	}
	if rest, have := eat(p, `,"detail":"`); have {
		var d []byte
		if d, p, ok = fastStringBytes(rest); !ok {
			return rec, false
		}
		rec.Detail = string(d)
	}
	if len(p) != 1 || p[0] != '}' {
		return rec, false
	}
	return rec, true
}

// eat consumes an exact literal prefix.
func eat(p []byte, lit string) ([]byte, bool) {
	if len(p) < len(lit) || string(p[:len(lit)]) != lit {
		return p, false
	}
	return p[len(lit):], true
}

// fastUint parses a JSON-grammar unsigned integer: digits only, no
// leading zero, and not the start of a float. At most 19 digits (never
// overflows uint64); longer or odd-shaped numbers defer to the
// reference decoder.
func fastUint(p []byte) (uint64, []byte, bool) {
	i := 0
	for i < len(p) && p[i] >= '0' && p[i] <= '9' {
		i++
	}
	if i == 0 || i > 19 {
		return 0, p, false
	}
	if p[0] == '0' && i != 1 {
		return 0, p, false
	}
	if i < len(p) && (p[i] == '.' || p[i] == 'e' || p[i] == 'E') {
		return 0, p, false
	}
	var v uint64
	for _, c := range p[:i] {
		v = v*10 + uint64(c-'0')
	}
	return v, p[i:], true
}

// fastInt parses a JSON-grammar signed integer. At most 18 digits
// (never overflows int64); anything longer defers to the reference.
func fastInt(p []byte) (int64, []byte, bool) {
	neg := false
	if len(p) > 0 && p[0] == '-' {
		neg = true
		p = p[1:]
	}
	u, rest, ok := fastUint(p)
	if !ok || u > 999999999999999999 {
		return 0, p, false
	}
	v := int64(u)
	if neg {
		v = -v
	}
	return v, rest, true
}

// fastFloat validates strict JSON number grammar, then parses with the
// same strconv.ParseFloat encoding/json uses — grammar validation first
// so ParseFloat's extensions (hex floats, underscores, Inf) can never
// accept what JSON would reject.
func fastFloat(p []byte) (float64, []byte, bool) {
	i := 0
	if i < len(p) && p[i] == '-' {
		i++
	}
	start := i
	for i < len(p) && p[i] >= '0' && p[i] <= '9' {
		i++
	}
	if i == start {
		return 0, p, false
	}
	if p[start] == '0' && i-start != 1 {
		return 0, p, false
	}
	if i < len(p) && p[i] == '.' {
		i++
		fs := i
		for i < len(p) && p[i] >= '0' && p[i] <= '9' {
			i++
		}
		if i == fs {
			return 0, p, false
		}
	}
	if i < len(p) && (p[i] == 'e' || p[i] == 'E') {
		i++
		if i < len(p) && (p[i] == '+' || p[i] == '-') {
			i++
		}
		es := i
		for i < len(p) && p[i] >= '0' && p[i] <= '9' {
			i++
		}
		if i == es {
			return 0, p, false
		}
	}
	v, err := strconv.ParseFloat(string(p[:i]), 64)
	if err != nil {
		return 0, p, false
	}
	return v, p[i:], true
}

// fastStringBytes scans a string body up to the closing quote,
// accepting only printable ASCII with no escapes — the alphabet the
// scheduler's kind and detail fields actually use. Anything richer
// (escapes, UTF-8, control bytes) defers to the reference decoder,
// which owns JSON's replacement and unescaping rules.
func fastStringBytes(p []byte) ([]byte, []byte, bool) {
	for i := 0; i < len(p); i++ {
		c := p[i]
		if c == '"' {
			return p[:i], p[i+1:], true
		}
		if c < 0x20 || c > 0x7e || c == '\\' {
			return nil, p, false
		}
	}
	return nil, p, false
}

// internKind returns the package's kind constant for known kinds so
// decoding a million ticks allocates no strings.
func internKind(b []byte) string {
	switch string(b) {
	case KindMeta:
		return KindMeta
	case KindSubmit:
		return KindSubmit
	case KindAdmit:
		return KindAdmit
	case KindLease:
		return KindLease
	case KindRelease:
		return KindRelease
	case KindWarning:
		return KindWarning
	case KindEvict:
		return KindEvict
	case KindRefund:
		return KindRefund
	case KindAcquire:
		return KindAcquire
	case KindDone:
		return KindDone
	case KindExpire:
		return KindExpire
	case KindTick:
		return KindTick
	case KindPreDrain:
		return KindPreDrain
	}
	return string(b)
}

// decodeWorkers resolves a worker-count option.
func decodeWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}
