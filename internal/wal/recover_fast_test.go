package wal

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// buildBusyLog writes a realistic log: meta, a spread of submits, and a
// long run of transition records — enough lines that the parallel
// decoder actually splits work across workers.
func buildBusyLog(t testing.TB, dir string, opts Options, jobs, ticks int) {
	t.Helper()
	opts.NoSync = true
	l, err := Create(dir, testMeta(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < jobs; id++ {
		j := testJob(id)
		if _, err := l.Append(Record{Kind: KindSubmit, AtNs: j.ArrivalNs, JobID: id, Job: &j}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < ticks; i++ {
		at := int64(i) * int64(time.Minute)
		var rec Record
		switch i % 5 {
		case 0:
			rec = Record{Kind: KindTick, AtNs: at, JobID: -1}
		case 1:
			rec = Record{Kind: KindAcquire, AtNs: at, JobID: -1, Alloc: i, Cores: 128, Amount: 0.0417 * float64(i%7), Detail: "c4.2xlarge"}
		case 2:
			rec = Record{Kind: KindLease, AtNs: at, JobID: i % jobs, Alloc: i, Cores: 128}
		case 3:
			rec = Record{Kind: KindRelease, AtNs: at, JobID: i % jobs, Alloc: i, Cores: 128}
		default:
			rec = Record{Kind: KindRefund, AtNs: at, JobID: i % jobs, Alloc: i, Amount: 0.1337}
		}
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// workerCounts spans the serial path (1), a split (2), and more workers
// than most CI machines have cores (8) — plus 0, the GOMAXPROCS default.
var workerCounts = []int{0, 1, 2, 8}

// TestRecoverWorkersBitIdentical pins the tentpole contract: RecoverWith
// returns a deeply equal Replay at every worker count, over a flat
// single-segment log, a rotated snapshot+segments layout, and a torn
// tail. Workers only parallelize frame decode into indexed slots; the
// fold that builds the Replay is always the same serial walk.
func TestRecoverWorkersBitIdentical(t *testing.T) {
	layouts := []struct {
		name  string
		build func(t *testing.T, dir string)
	}{
		{"flat", func(t *testing.T, dir string) {
			buildBusyLog(t, dir, Options{}, 8, 600)
		}},
		{"rotated", func(t *testing.T, dir string) {
			// Tiny segments force rotation + snapshot compaction.
			buildBusyLog(t, dir, Options{SegmentBytes: 2048}, 16, 400)
		}},
		{"torn", func(t *testing.T, dir string) {
			buildBusyLog(t, dir, Options{}, 4, 300)
			names, _, err := listSegments(dir)
			if err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(filepath.Join(dir, names[len(names)-1]), os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(`deadbeef {"seq":9999,"kind":"tick","trunc`); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}},
	}
	for _, lo := range layouts {
		t.Run(lo.name, func(t *testing.T) {
			dir := t.TempDir()
			lo.build(t, dir)
			ref, err := RecoverWith(dir, RecoverOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if lo.name == "torn" && !ref.TornDropped {
				t.Fatal("torn layout did not report TornDropped")
			}
			for _, w := range workerCounts {
				got, err := RecoverWith(dir, RecoverOptions{Workers: w})
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("workers=%d replay diverges from serial:\n got %+v\nwant %+v", w, got, ref)
				}
			}
		})
	}
}

// TestRecoverShardedWorkersBitIdentical is the same contract for the
// sharded layout: concurrent shard recovery plus parallel decode inside
// each shard must merge to the same Replay as fully serial recovery.
func TestRecoverShardedWorkersBitIdentical(t *testing.T) {
	dir := t.TempDir()
	s, err := CreateSharded(dir, testMeta(), 3, Options{NoSync: true, SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 24
	for id := 0; id < jobs; id++ {
		j := testJob(id)
		if _, err := s.Append(Record{Kind: KindSubmit, AtNs: j.ArrivalNs, JobID: id, Job: &j}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Append(Record{Kind: KindTick, AtNs: j.ArrivalNs, JobID: -1}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Append(Record{Kind: KindLease, AtNs: j.ArrivalNs, JobID: id, Alloc: id, Cores: 64}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ref, err := RecoverShardedWith(dir, RecoverOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Jobs) != jobs {
		t.Fatalf("reference recovered %d jobs, want %d", len(ref.Jobs), jobs)
	}
	for _, w := range workerCounts {
		got, err := RecoverShardedWith(dir, RecoverOptions{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d sharded replay diverges from serial", w)
		}
	}
}

// TestRecoverErrorsIdenticalAcrossWorkers pins failure behavior too:
// corruption and sequence gaps must produce the same error string at
// every worker count — the parallel decode may not change which record
// recovery blames.
func TestRecoverErrorsIdenticalAcrossWorkers(t *testing.T) {
	corrupt := func(t *testing.T, dir string, mangle func(lines []string) []string) {
		t.Helper()
		names, _, err := listSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		seg := filepath.Join(dir, names[0])
		raw, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		lines := mangle(strings.SplitAfter(string(raw), "\n"))
		if err := os.WriteFile(seg, []byte(strings.Join(lines, "")), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name   string
		mangle func(lines []string) []string
	}{
		{"mid-log-corruption", func(lines []string) []string {
			lines[40] = lines[40][:12] + "X" + lines[40][13:]
			return lines
		}},
		{"sequence-gap", func(lines []string) []string {
			return append(lines[:40], lines[41:]...)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			buildBusyLog(t, dir, Options{}, 4, 300)
			corrupt(t, dir, tc.mangle)
			_, refErr := RecoverWith(dir, RecoverOptions{Workers: 1})
			if refErr == nil {
				t.Fatal("corrupted log recovered cleanly")
			}
			for _, w := range workerCounts {
				_, err := RecoverWith(dir, RecoverOptions{Workers: w})
				if err == nil || err.Error() != refErr.Error() {
					t.Fatalf("workers=%d error = %v, want %v", w, err, refErr)
				}
			}
		})
	}
}

// FuzzDecodeFrame is the equivalence oracle for the hand-rolled decoder:
// on every input, decodeFrameFast and the encoding/json-backed
// decodeFrame must agree — both reject, or both accept with identical
// Records. The fast path's strictness (canonical key order, plain ASCII
// strings, no leading zeros, bounded digits) means anything it handles
// itself is something json would have decoded the same way; everything
// else falls back to json inside decodeFrameFast, so divergence anywhere
// is a bug this fuzzer surfaces.
func FuzzDecodeFrame(f *testing.F) {
	// Seed with real frames from the actual writer, covering every kind.
	dir := f.TempDir()
	l, err := Create(dir, testMeta(), Options{NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range everyKindRecords() {
		if _, err := l.Append(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	names, _, err := listSegments(dir)
	if err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, names[0]))
	if err != nil {
		f.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if line != "" {
			f.Add([]byte(line))
		}
	}
	// Corner cases aimed at the fast parser's reject conditions: each is
	// CRC-valid so the payload decoders are actually exercised.
	frame := func(payload string) []byte {
		return []byte(fmt.Sprintf("%08x %s", crc32.ChecksumIEEE([]byte(payload)), payload))
	}
	for _, payload := range []string{
		`{"seq":1,"kind":"tick","job_id":-1}`,
		`{"seq":01,"kind":"tick","job_id":-1}`,                      // leading zero
		`{"seq":18446744073709551615,"kind":"tick","job_id":-1}`,    // uint64 max
		`{"seq":18446744073709551616,"kind":"tick","job_id":-1}`,    // uint64 overflow
		`{"seq":2,"kind":"tick","at_ns":9223372036854775807,"job_id":-1}`,
		`{"seq":2,"kind":"tick","at_ns":-9223372036854775808,"job_id":-1}`,
		`{"seq":2,"kind":"tick","at_ns":9999999999999999999,"job_id":-1}`, // int64 overflow
		`{"seq":3,"kind":"refund","job_id":4,"alloc":7,"amount":1e3}`,
		`{"seq":3,"kind":"refund","job_id":4,"alloc":7,"amount":0.1}`,
		`{"seq":3,"kind":"refund","job_id":4,"alloc":7,"amount":-0.0}`,
		`{"seq":3,"kind":"refund","job_id":4,"alloc":7,"amount":1.7976931348623157e308}`,
		`{"seq":3,"kind":"refund","job_id":4,"alloc":7,"amount":0x1p3}`,   // hex float: json rejects
		`{"seq":3,"kind":"refund","job_id":4,"alloc":7,"amount":.5}`,      // bare fraction: json rejects
		`{"seq":3,"kind":"refund","job_id":4,"alloc":7,"amount":1.}`,      // trailing dot: json rejects
		`{"seq":3,"kind":"refund","job_id":4,"alloc":7,"amount":Infinity}`,
		`{"seq":4,"kind":"acquire","job_id":-1,"detail":"a\u0041b"}`, // escape: fast rejects, json decodes
		`{"seq":4,"kind":"acquire","job_id":-1,"detail":"naïve"}`,    // non-ASCII
		`{"seq":4,"kind":"acquire","job_id":-1,"detail":"a\\"}`,      // backslash
		"{\"seq\":4,\"kind\":\"acquire\",\"job_id\":-1,\"detail\":\"\xff\xfe\"}", // invalid UTF-8
		`{"seq":5,"kind":"tick","job_id":-1} `, // trailing space
		`{"job_id":-1,"kind":"tick","seq":5}`,  // reordered keys
		`{"seq":5,"kind":"tick","job_id":-1,"future":"field"}`, // unknown key
		`{"seq":5,"kind":"wat","job_id":-1}`,   // unknown kind string
		`{"seq":5,"kind":"tick","job_id":-1,"meta":{"seed":7}}`,
	} {
		f.Add(frame(payload))
	}
	f.Add([]byte(""))
	f.Add([]byte("0000000"))
	f.Add([]byte("ZZZZZZZZ {}"))
	f.Add([]byte("00000000 "))

	f.Fuzz(func(t *testing.T, line []byte) {
		fast, okFast := decodeFrameFast(line)
		ref, okRef := decodeFrame(line)
		if okFast != okRef {
			t.Fatalf("decodeFrameFast ok=%v, decodeFrame ok=%v for %q", okFast, okRef, line)
		}
		if okFast && !reflect.DeepEqual(fast, ref) {
			t.Fatalf("decoders diverge for %q:\nfast %+v\njson %+v", line, fast, ref)
		}
	})
}
