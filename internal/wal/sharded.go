package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Sharded is a write-ahead log fanned out over N per-shard segment
// streams, so rotation, snapshotting, and fsync scale with the decision
// loop instead of funneling through one file. There is a single global
// sequence space: the router assigns each record its seq, then appends
// it to the stream its job hashes to (meta and job-less records pin to
// shard 0), so one stream holds an increasing — but gapped — subset of
// the global sequence. Recovery scans every stream loosely and k-way
// merges the results by seq; the group-commit Sync barrier covers all
// shards before any submission is acknowledged, so a crash can only
// lose records that were never externalized, exactly the flat log's
// guarantee.
//
// On-disk layout (one directory):
//
//	shard-000/  a standard Log directory (segments + snapshot)
//	shard-001/
//	...
type Sharded struct {
	dir  string
	meta Meta

	mu      sync.Mutex
	shards  []*Log
	nextSeq uint64
	closed  bool
}

const shardDirPrefix = "shard-"

func shardDirName(k int) string {
	return fmt.Sprintf("%s%03d", shardDirPrefix, k)
}

// ShardFor routes a job ID to a shard in [0, n): job-less records
// (negative IDs) pin to shard 0; real jobs hash through a SplitMix64
// finalizer so tenants spread evenly regardless of ID patterns. The
// scheduler uses the same mapping for its decision shards, keeping a
// job's WAL stream and decision shard aligned.
func ShardFor(jobID, n int) int {
	if n <= 1 || jobID < 0 {
		return 0
	}
	x := uint64(jobID)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

// IsSharded reports whether dir holds a sharded WAL layout.
func IsSharded(dir string) bool {
	return Exists(filepath.Join(dir, shardDirName(0)))
}

// CreateSharded initializes a fresh sharded log: n shard streams under
// dir, with the meta record at global seq 1 on shard 0.
func CreateSharded(dir string, meta Meta, n int, opts Options) (*Sharded, error) {
	if n < 1 {
		return nil, fmt.Errorf("wal: shard count must be >= 1, got %d", n)
	}
	if IsSharded(dir) {
		return nil, fmt.Errorf("wal: %s already holds a sharded log (use OpenSharded to recover it)", dir)
	}
	meta.WALShards = n
	s := &Sharded{dir: dir, meta: meta, shards: make([]*Log, n), nextSeq: 1}
	for k := range s.shards {
		l, err := createLog(filepath.Join(dir, shardDirName(k)), meta, opts)
		if err != nil {
			return nil, err
		}
		s.shards[k] = l
	}
	if _, err := s.Append(Record{Kind: KindMeta, JobID: -1, Meta: &meta}); err != nil {
		return nil, err
	}
	if err := s.Sync(); err != nil {
		return nil, err
	}
	return s, nil
}

// OpenSharded recovers a sharded log directory and reopens every shard
// stream for appending. Each stream is recovered loosely (its seqs are
// a gapped subset of the global space), then the per-shard replays
// merge: jobs re-sort into global submission order by their stamped
// seq, counters sum, and the clocks take the max across shards.
func OpenSharded(dir string, opts Options) (*Sharded, *Replay, error) {
	merged, replays, names, err := recoverShards(dir, opts.RecoverWorkers)
	if err != nil {
		return nil, nil, err
	}
	s := &Sharded{dir: dir, meta: merged.Meta, shards: make([]*Log, len(names)), nextSeq: merged.LastSeq + 1}
	for k, name := range names {
		// Every stream snapshots with the shared meta from here on, even
		// ones that never saw the meta record or a snapshot of their own.
		replays[k].Meta = merged.Meta
		l, err := openFrom(filepath.Join(dir, name), opts, replays[k])
		if err != nil {
			return nil, nil, err
		}
		s.shards[k] = l
	}
	return s, merged, nil
}

// RecoverSharded reads a sharded log directory without opening it for
// writes, merging the per-shard streams exactly as OpenSharded does.
func RecoverSharded(dir string) (*Replay, error) {
	return RecoverShardedWith(dir, RecoverOptions{})
}

// RecoverShardedWith is RecoverSharded with explicit decode options.
func RecoverShardedWith(dir string, opts RecoverOptions) (*Replay, error) {
	merged, _, _, err := recoverShards(dir, opts.Workers)
	return merged, err
}

// recoverShards scans every shard stream — concurrently, splitting the
// worker budget across streams — and merges the per-shard replays into
// the global view. The merge consumes the indexed results in shard
// order and errors select the lowest-numbered failing shard, so the
// outcome is independent of goroutine scheduling.
func recoverShards(dir string, workers int) (*Replay, []*Replay, []string, error) {
	names, err := shardDirs(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("wal: %s holds no sharded log", dir)
	}
	workers = decodeWorkers(workers)
	per := workers / len(names)
	if per < 1 {
		per = 1
	}
	conc := workers
	if conc > len(names) {
		conc = len(names)
	}
	replays := make([]*Replay, len(names))
	metas := make([]bool, len(names))
	errs := make([]error, len(names))
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for k, name := range names {
		wg.Add(1)
		go func(k int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			replays[k], metas[k], errs[k] = recoverDir(filepath.Join(dir, name), true, per)
		}(k, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, nil, err
		}
	}
	merged := &Replay{}
	haveMeta := false
	for k, r := range replays {
		if metas[k] && !haveMeta {
			merged.Meta = r.Meta
			haveMeta = true
		}
		merged.Jobs = append(merged.Jobs, r.Jobs...)
		merged.Records += r.Records
		merged.Transitions += r.Transitions
		merged.Segments += r.Segments
		merged.FromSnapshot = merged.FromSnapshot || r.FromSnapshot
		merged.TornDropped = merged.TornDropped || r.TornDropped
		if r.LastSeq > merged.LastSeq {
			merged.LastSeq = r.LastSeq
		}
		if r.LastVirtual > merged.LastVirtual {
			merged.LastVirtual = r.LastVirtual
		}
	}
	if !haveMeta {
		return nil, nil, nil, fmt.Errorf("wal: %s holds no meta record in any shard", dir)
	}
	// Global submission order is the seq order; every submit record was
	// stamped with its global seq on the way in.
	sort.Slice(merged.Jobs, func(i, j int) bool { return merged.Jobs[i].Seq < merged.Jobs[j].Seq })
	return merged, replays, names, nil
}

// shardDirs lists dir's shard subdirectories in shard order, verifying
// the numbering is contiguous from zero.
func shardDirs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && len(e.Name()) > len(shardDirPrefix) && e.Name()[:len(shardDirPrefix)] == shardDirPrefix {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for k, name := range names {
		if name != shardDirName(k) {
			return nil, fmt.Errorf("wal: %s: shard directories not contiguous: found %s at position %d", dir, name, k)
		}
	}
	return names, nil
}

// Append assigns the record its global sequence number and appends it to
// the shard its job hashes to. The router's mutex serializes seq
// assignment and the buffered append, so one stream's seqs always
// increase — the invariant loose recovery checks.
func (s *Sharded) Append(r Record) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("wal: log is closed")
	}
	r.Seq = s.nextSeq
	seq, err := s.shards[ShardFor(r.JobID, len(s.shards))].appendAssigned(r)
	if err != nil {
		return 0, err
	}
	s.nextSeq = r.Seq + 1
	return seq, nil
}

// Sync makes every appended record durable on every shard. The fsyncs
// fan out in parallel — independent files, independent queues — and the
// barrier returns after the slowest one, so the flat log's guarantee
// (everything appended before Sync survives a crash) holds shard-wide.
func (s *Sharded) Sync() error {
	s.mu.Lock()
	shards := s.shards
	s.mu.Unlock()
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for k, l := range shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[k] = l.Sync()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes every shard stream. Idempotent.
func (s *Sharded) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, l := range s.shards {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Meta returns the log's environment record.
func (s *Sharded) Meta() Meta {
	return s.meta
}

// LastSeq returns the most recently assigned global sequence number.
func (s *Sharded) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextSeq - 1
}

// Stats aggregates across shard streams: counters sum, LastSeq is the
// global router position, and Shards records the fan-out.
func (s *Sharded) Stats() Stats {
	s.mu.Lock()
	shards := s.shards
	last := s.nextSeq - 1
	s.mu.Unlock()
	st := Stats{Dir: s.dir, LastSeq: last, Shards: len(shards)}
	for _, l := range shards {
		ls := l.Stats()
		st.Appends += ls.Appends
		st.Syncs += ls.Syncs
		st.Rotations += ls.Rotations
		st.Snapshots += ls.Snapshots
		st.Submits += ls.Submits
		st.SegmentFill += ls.SegmentFill
		if ls.Err != "" && st.Err == "" {
			st.Err = ls.Err
		}
	}
	return st
}

// ShardStats returns each stream's own stats, for tests and triage.
func (s *Sharded) ShardStats() []Stats {
	s.mu.Lock()
	shards := s.shards
	s.mu.Unlock()
	out := make([]Stats, len(shards))
	for k, l := range shards {
		out[k] = l.Stats()
	}
	return out
}

// LastVirtual is the latest virtual instant any shard has logged.
func (s *Sharded) LastVirtual() time.Duration {
	s.mu.Lock()
	shards := s.shards
	s.mu.Unlock()
	var max time.Duration
	for _, l := range shards {
		l.mu.Lock()
		if at := time.Duration(l.lastVirtNs); at > max {
			max = at
		}
		l.mu.Unlock()
	}
	return max
}
