package wal

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestShardForStableAndBounded(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		for id := -2; id < 100; id++ {
			k := ShardFor(id, n)
			if k < 0 || k >= n {
				t.Fatalf("ShardFor(%d, %d) = %d out of range", id, n, k)
			}
			if k != ShardFor(id, n) {
				t.Fatalf("ShardFor(%d, %d) not stable", id, n)
			}
		}
		if ShardFor(-1, n) != 0 {
			t.Fatalf("job-less records must pin to shard 0 at n=%d", n)
		}
	}
	// The hash must actually spread jobs at n=4 (sequential IDs are the
	// common case).
	hit := make(map[int]bool)
	for id := 0; id < 64; id++ {
		hit[ShardFor(id, 4)] = true
	}
	if len(hit) != 4 {
		t.Fatalf("sequential IDs landed on only %d of 4 shards", len(hit))
	}
}

func TestShardedCreateAppendRecover(t *testing.T) {
	dir := t.TempDir()
	const shards = 3
	s, err := CreateSharded(dir, testMeta(), shards, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if !IsSharded(dir) {
		t.Fatal("IsSharded = false after CreateSharded")
	}
	// Interleave submits for many jobs with ticks so records spread
	// across every stream while seqs stay globally ordered.
	const jobs = 9
	for id := 0; id < jobs; id++ {
		j := testJob(id)
		if _, err := s.Append(Record{Kind: KindSubmit, AtNs: j.ArrivalNs, JobID: id, Job: &j}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Append(Record{Kind: KindTick, AtNs: j.ArrivalNs, JobID: -1}); err != nil {
			t.Fatal(err)
		}
	}
	wantLast := uint64(1 + 2*jobs) // meta + (submit, tick) per job
	if s.LastSeq() != wantLast {
		t.Fatalf("LastSeq = %d, want %d", s.LastSeq(), wantLast)
	}
	st := s.Stats()
	if st.Shards != shards || st.LastSeq != wantLast || st.Submits != jobs {
		t.Fatalf("stats = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rep, err := OpenSharded(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rep.Meta.Seed != testMeta().Seed || rep.Meta.WALShards != shards {
		t.Fatalf("meta = %+v", rep.Meta)
	}
	if rep.LastSeq != wantLast {
		t.Fatalf("merged LastSeq = %d, want %d", rep.LastSeq, wantLast)
	}
	if len(rep.Jobs) != jobs {
		t.Fatalf("jobs = %d, want %d", len(rep.Jobs), jobs)
	}
	for i, j := range rep.Jobs {
		if j.ID != i {
			t.Fatalf("job %d recovered out of submission order: got ID %d", i, j.ID)
		}
		if i > 0 && j.Seq <= rep.Jobs[i-1].Seq {
			t.Fatalf("job seqs not increasing: %d then %d", rep.Jobs[i-1].Seq, j.Seq)
		}
	}
	// Appending continues in the global sequence space.
	seq, err := s2.Append(Record{Kind: KindTick, JobID: -1})
	if err != nil {
		t.Fatal(err)
	}
	if seq != wantLast+1 {
		t.Fatalf("post-recovery seq = %d, want %d", seq, wantLast+1)
	}
}

func TestShardedRecoveryAcceptsUnsyncedShardSuffix(t *testing.T) {
	// A crash can lose one shard's buffered tail while another shard's
	// later records reached disk. Those survivors are genuine history —
	// nothing past the last Sync was ever acknowledged — so recovery
	// must accept them rather than treating the global gap as
	// corruption.
	dir := t.TempDir()
	s, err := CreateSharded(dir, testMeta(), 2, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var shard1Job int
	for id := 0; id < 8; id++ {
		if ShardFor(id, 2) == 1 {
			shard1Job = id
			break
		}
	}
	j := testJob(shard1Job)
	if _, err := s.Append(Record{Kind: KindSubmit, AtNs: 0, JobID: shard1Job, Job: &j}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(Record{Kind: KindTick, AtNs: int64(time.Minute), JobID: -1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn crash: shard 1 (the submit, seq 2) vanishes from
	// disk, shard 0 keeps the later tick (seq 3).
	segs, _, err := listSegments(filepath.Join(dir, shardDirName(1)))
	if err != nil || len(segs) != 1 {
		t.Fatalf("shard 1 segments: %v, %v", segs, err)
	}
	if err := os.Truncate(filepath.Join(dir, shardDirName(1), segs[0]), 0); err != nil {
		t.Fatal(err)
	}

	s2, rep, err := OpenSharded(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(rep.Jobs) != 0 {
		t.Fatalf("lost submit resurrected: %+v", rep.Jobs)
	}
	if rep.LastSeq != 3 {
		t.Fatalf("LastSeq = %d, want 3 (the surviving tick)", rep.LastSeq)
	}
}

func TestShardedTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	s, err := CreateSharded(dir, testMeta(), 2, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Append(Record{Kind: KindTick, AtNs: int64(i) * int64(time.Minute), JobID: -1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record of shard 0's only segment mid-write.
	sdir := filepath.Join(dir, shardDirName(0))
	segs, _, err := listSegments(sdir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	path := filepath.Join(sdir, segs[0])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rep, err := OpenSharded(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !rep.TornDropped {
		t.Fatal("torn tail not reported")
	}
	if rep.LastSeq != 4 { // meta + 4 ticks = 5; the 5th (last on shard 0) tore
		t.Fatalf("LastSeq = %d, want 4", rep.LastSeq)
	}
}

func TestShardedRotationAndSnapshotPerStream(t *testing.T) {
	dir := t.TempDir()
	s, err := CreateSharded(dir, testMeta(), 2, Options{SegmentBytes: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 24
	for id := 0; id < jobs; id++ {
		j := testJob(id)
		if _, err := s.Append(Record{Kind: KindSubmit, AtNs: j.ArrivalNs, JobID: id, Job: &j}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Rotations == 0 || st.Snapshots == 0 {
		t.Fatalf("tiny segments never rotated: %+v", st)
	}
	per := s.ShardStats()
	if len(per) != 2 || per[0].Snapshots == 0 || per[1].Snapshots == 0 {
		t.Fatalf("per-shard stats = %+v", per)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rep, err := OpenSharded(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(rep.Jobs) != jobs {
		t.Fatalf("jobs after rotation+snapshot recovery = %d, want %d", len(rep.Jobs), jobs)
	}
	for i, j := range rep.Jobs {
		if j.ID != i {
			t.Fatalf("job %d out of order after snapshot merge: ID %d", i, j.ID)
		}
	}
	if !rep.FromSnapshot {
		t.Fatal("expected snapshot-seeded recovery")
	}
}

func TestCreateShardedRefusesExisting(t *testing.T) {
	dir := t.TempDir()
	s, err := CreateSharded(dir, testMeta(), 2, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := CreateSharded(dir, testMeta(), 2, Options{NoSync: true}); err == nil {
		t.Fatal("CreateSharded over an existing log succeeded")
	}
}
