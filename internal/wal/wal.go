// Package wal is the scheduler's durability subsystem: a segmented,
// checksummed write-ahead log plus snapshot/compaction, so a crashed
// `-serve` control plane can recover to bit-identical state.
//
// The design leans on the repository's core property: the whole control
// plane is a deterministic simulator. A run is fully determined by its
// *inputs* — the market/Brain environment (seed, windows, policy) and
// the stream of accepted submissions with their effective arrival
// offsets — so the log does not need to capture simulator state at all.
// Recovery rebuilds the same environment, re-submits the logged jobs,
// and replays virtual time from zero; bills, trace trees, and /v1/stats
// land on the same bits as an uninterrupted run (PR 3 established
// serve ≡ batch on the same inputs; recovery is just another batch).
// Transition records (admit/lease/evict/refund/done/tick) are an audit
// trail riding in the same log: they mark durable progress, give every
// crash point a record boundary, and let an operator reconstruct what
// the scheduler did without re-running it.
//
// On-disk layout (one directory):
//
//	wal-<firstseq>.log   segments: one record per line, CRC32-framed JSONL
//	snapshot.json        replay inputs covering records with seq ≤ last_seq
//
// Each segment line is "crc32(payload) in %08x, one space, payload,
// newline", with the payload a journal.MarshalLine JSON object. Only the
// final line of the final segment may fail its checksum (a torn write
// from a crash mid-append); it is dropped on recovery. A bad record with
// valid data after it is real corruption and aborts recovery.
//
// Appends are buffered (no syscall on the hot path); Sync flushes and
// fsyncs — group commit falls out of a single mutex: the first waiter's
// fsync covers every record appended before it, and later waiters see a
// clean log and return without a syscall. Rotation (by segment size)
// writes a fresh snapshot and deletes the segments it covers, bounding
// both disk and recovery time.
package wal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"proteus/internal/core"
	"proteus/internal/journal"
)

// Record kinds. Submit records are replay inputs; everything else is a
// durable audit trail of scheduler transitions.
const (
	// KindMeta is the first record of a log: the environment inputs.
	KindMeta = "meta"
	// KindSubmit is one accepted job with its effective (post-clamp)
	// arrival offset — the replay inputs.
	KindSubmit = "submit"
	// KindAdmit marks a job winning a concurrency slot.
	KindAdmit = "admit"
	// KindLease marks an allocation leased to a job.
	KindLease = "lease"
	// KindRelease marks a lease reclaimed from a job.
	KindRelease = "release"
	// KindWarning marks an eviction warning reclaiming a lease.
	KindWarning = "evict-warning"
	// KindEvict marks an allocation's machines vanishing.
	KindEvict = "evict"
	// KindRefund marks an eviction refunding the in-progress hour.
	KindRefund = "refund"
	// KindAcquire marks a spot acquisition joining the footprint.
	KindAcquire = "acquire"
	// KindDone marks a job reaching its target work.
	KindDone = "done"
	// KindExpire marks a job arriving at or after its deadline.
	KindExpire = "expire"
	// KindTick marks a decision-ticker firing that ran the broker.
	KindTick = "tick"
	// KindPreDrain marks a forecast-initiated proactive drain of a
	// still-live allocation (audit-only, like the other transitions: the
	// forecaster re-derives the same decision from the replayed price
	// stream).
	KindPreDrain = "pre-drain"
)

// Meta pins the inputs that determine a run besides its submissions:
// the market environment and the scheduler's policy knobs. Recovery
// rebuilds the environment from these instead of trusting flags, so a
// restart with different flags still replays the original run.
type Meta struct {
	Seed        int64  `json:"seed"`
	EvalDays    int    `json:"eval_days"`
	TrainDays   int    `json:"train_days"`
	BetaSamples int    `json:"beta_samples"`
	Zones       int    `json:"zones"`
	Policy      string `json:"policy"`
	TraceSeed   uint64 `json:"trace_seed"`
	// MaxConcurrent mirrors the scheduler's concurrency cap (0 =
	// unbounded); it changes admission order, so replay must match it.
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// Forecast records whether the online eviction forecaster was
	// enabled; proactive pre-drains change lease history, so replay must
	// run with the same forecaster (default options) to be identical.
	Forecast bool `json:"forecast,omitempty"`
	// Shards records the scheduler's decision-shard count. Provenance
	// only: the sharded decision loop is bit-identical at every count.
	Shards int `json:"shards,omitempty"`
	// WALShards records the log's own segment-stream fan-out, for
	// operator provenance (the on-disk layout is self-describing).
	WALShards int `json:"wal_shards,omitempty"`
	// Note is free-form provenance (binary version, operator comment).
	Note string `json:"note,omitempty"`
}

// JobRecord is one accepted submission in replayable form. Durations are
// integer nanoseconds so replay is exact; the spec marshals through
// encoding/json, whose float encoding round-trips bit-exactly.
type JobRecord struct {
	ID         int          `json:"id"`
	Name       string       `json:"name,omitempty"`
	ArrivalNs  int64        `json:"arrival_ns"`
	Priority   int          `json:"priority,omitempty"`
	DeadlineNs int64        `json:"deadline_ns,omitempty"`
	Proactive  bool         `json:"proactive,omitempty"`
	Spec       core.JobSpec `json:"spec"`
	// Seq is the submit record's global sequence number, stamped during
	// recovery and snapshotting so jobs from different shard streams
	// merge back into submission order.
	Seq uint64 `json:"seq,omitempty"`
}

// Record is one WAL entry. Seq is assigned by Append; JobID is -1 when
// the record concerns no job (meta, tick).
type Record struct {
	Seq    uint64     `json:"seq"`
	Kind   string     `json:"kind"`
	AtNs   int64      `json:"at_ns,omitempty"` // virtual time of the transition
	JobID  int        `json:"job_id"`
	Alloc  int        `json:"alloc,omitempty"`
	Cores  int        `json:"cores,omitempty"`
	Amount float64    `json:"amount,omitempty"`
	Detail string     `json:"detail,omitempty"`
	Job    *JobRecord `json:"job,omitempty"`
	Meta   *Meta      `json:"meta,omitempty"`
}

// Snapshot is the compaction artifact: the replay inputs for every
// record with seq ≤ LastSeq, letting those segments be deleted.
type Snapshot struct {
	Meta          Meta        `json:"meta"`
	LastSeq       uint64      `json:"last_seq"`
	LastVirtualNs int64       `json:"last_virtual_ns"`
	Jobs          []JobRecord `json:"jobs"`
}

// Replay is what Recover reads back: everything needed to rebuild the
// scheduler plus bookkeeping about the log itself.
type Replay struct {
	Meta Meta
	// Jobs are the accepted submissions in log order (snapshot first).
	Jobs []JobRecord
	// LastSeq is the sequence number of the last durable record.
	LastSeq uint64
	// LastVirtual is the latest virtual instant any record carries — the
	// catch-up target for a recovered Serve loop.
	LastVirtual time.Duration
	// Records and Transitions count segment records replayed beyond the
	// snapshot (Transitions excludes meta and submit records).
	Records     int
	Transitions int
	// Segments is how many segment files were scanned.
	Segments int
	// FromSnapshot reports whether a snapshot seeded the replay.
	FromSnapshot bool
	// TornDropped reports that a partially-written final record failed
	// its checksum and was dropped (a crash mid-append, not corruption).
	TornDropped bool
}

// Options tunes a Log. The zero value is production-ready.
type Options struct {
	// SegmentBytes rotates (and compacts) the log when the active
	// segment exceeds this size. Zero picks 4 MiB.
	SegmentBytes int
	// NoSync skips every fsync — for tests and benchmarks that exercise
	// the logic without paying the disk.
	NoSync bool
	// RecoverWorkers caps the parallel frame-decode workers Open and
	// OpenSharded use during recovery. 0 picks GOMAXPROCS; 1 decodes
	// serially. Bit-identical replay at every setting.
	RecoverWorkers int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// Stats is a point-in-time summary of the log, surfaced in /v1/stats.
type Stats struct {
	Dir       string `json:"dir"`
	LastSeq   uint64 `json:"last_seq"`
	Appends   uint64 `json:"appends"`
	Syncs     uint64 `json:"syncs"`
	Rotations uint64 `json:"rotations"`
	Snapshots uint64 `json:"snapshots"`
	Submits   int    `json:"submits"`
	// SegmentFill is bytes written to the active segment so far.
	SegmentFill int    `json:"segment_fill"`
	Err         string `json:"error,omitempty"`
	// Shards is the segment-stream fan-out (0 for a flat log).
	Shards int `json:"shards,omitempty"`
}

// Writer is the append side of a write-ahead log — satisfied by both the
// flat Log and the Sharded fan-out, so the scheduler is agnostic to the
// on-disk layout.
type Writer interface {
	Append(Record) (uint64, error)
	Sync() error
	Close() error
	Stats() Stats
	Meta() Meta
}

// Log is an open write-ahead log. Safe for concurrent use. I/O errors
// are sticky: once an append or sync fails, every later call returns the
// same error — the log can no longer promise durability.
type Log struct {
	dir  string
	opts Options

	mu         sync.Mutex
	f          *os.File
	w          *bufio.Writer
	meta       Meta
	nextSeq    uint64
	segStart   uint64 // first seq of the active segment
	segFill    int
	dirty      bool
	closed     bool
	err        error
	submits    []JobRecord
	lastVirtNs int64

	appends   uint64
	syncs     uint64
	rotations uint64
	snapshots uint64
}

const (
	snapshotName = "snapshot.json"
	segPrefix    = "wal-"
	segSuffix    = ".log"
)

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, segSuffix)
}

// listSegments returns the directory's segment files sorted by first
// sequence number.
func listSegments(dir string) ([]string, []uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	var firsts []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		mid := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		first, err := strconv.ParseUint(mid, 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: bad segment name %q", name)
		}
		names = append(names, name)
		firsts = append(firsts, first)
	}
	sort.Sort(&segSort{names, firsts})
	return names, firsts, nil
}

type segSort struct {
	names  []string
	firsts []uint64
}

func (s *segSort) Len() int           { return len(s.names) }
func (s *segSort) Less(i, j int) bool { return s.firsts[i] < s.firsts[j] }
func (s *segSort) Swap(i, j int) {
	s.names[i], s.names[j] = s.names[j], s.names[i]
	s.firsts[i], s.firsts[j] = s.firsts[j], s.firsts[i]
}

// Exists reports whether dir holds a prior WAL (segments or a
// snapshot) — the Open-vs-Create decision for a service boot.
func Exists(dir string) bool {
	if names, _, err := listSegments(dir); err == nil && len(names) > 0 {
		return true
	}
	_, err := os.Stat(filepath.Join(dir, snapshotName))
	return err == nil
}

// Create initializes a fresh log in dir (created if missing, must hold
// no prior WAL files) and writes the meta record as seq 1.
func Create(dir string, meta Meta, opts Options) (*Log, error) {
	l, err := createLog(dir, meta, opts)
	if err != nil {
		return nil, err
	}
	if _, err := l.Append(Record{Kind: KindMeta, JobID: -1, Meta: &meta}); err != nil {
		return nil, err
	}
	if err := l.Sync(); err != nil {
		return nil, err
	}
	return l, nil
}

// createLog makes the empty on-disk structure for a fresh log without
// appending the meta record — shard streams of a Sharded log carry the
// meta only in their snapshots (the meta *record* lives once, at global
// seq 1 on shard 0).
func createLog(dir string, meta Meta, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	names, _, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(names) > 0 {
		return nil, fmt.Errorf("wal: %s already holds a log (use Open to recover it)", dir)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err == nil {
		return nil, fmt.Errorf("wal: %s already holds a snapshot (use Open to recover it)", dir)
	}
	l := &Log{dir: dir, opts: opts.withDefaults(), meta: meta, nextSeq: 1}
	if err := l.openSegmentLocked(); err != nil {
		return nil, err
	}
	return l, nil
}

// Open recovers an existing log and reopens it for appending. The
// returned Replay carries the inputs to rebuild the scheduler. Appends
// continue in a fresh segment (never into a possibly-torn old one), and
// a new snapshot immediately compacts the recovered history.
func Open(dir string, opts Options) (*Log, *Replay, error) {
	r, _, err := recoverDir(dir, false, opts.RecoverWorkers)
	if err != nil {
		return nil, nil, err
	}
	l, err := openFrom(dir, opts, r)
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

// openFrom reopens a recovered directory for appending: a fresh segment
// (never into a possibly-torn old one), then an immediate snapshot that
// compacts the recovered history. The fresh segment's first sequence is
// bumped past any existing segment name so a record-less active segment
// left by a crash never collides.
func openFrom(dir string, opts Options, r *Replay) (*Log, error) {
	nextSeq := r.LastSeq + 1
	if _, firsts, err := listSegments(dir); err != nil {
		return nil, err
	} else if n := len(firsts); n > 0 && firsts[n-1] >= nextSeq {
		nextSeq = firsts[n-1] + 1
	}
	l := &Log{
		dir:        dir,
		opts:       opts.withDefaults(),
		meta:       r.Meta,
		nextSeq:    nextSeq,
		submits:    append([]JobRecord(nil), r.Jobs...),
		lastVirtNs: int64(r.LastVirtual),
	}
	if err := l.openSegmentLocked(); err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.snapshotLocked(); err != nil {
		return nil, err
	}
	if err := l.removeCoveredLocked(); err != nil {
		return nil, err
	}
	return l, nil
}

// Recover reads a log directory without opening it for writes: snapshot
// (if any), then every segment in order, verifying checksums and
// sequence continuity. A torn final record is dropped; anything else
// malformed aborts with an error. Frame decoding runs the fast path
// (recover_fast.go) across GOMAXPROCS workers; RecoverWith picks the
// worker count explicitly.
func Recover(dir string) (*Replay, error) {
	r, _, err := recoverDir(dir, false, 0)
	return r, err
}

// recoverDir scans one log directory. In strict mode (a flat log)
// sequence numbers must be contiguous and a meta record (or snapshot)
// must be present. In loose mode — one shard stream of a Sharded log,
// which holds an arbitrary subset of the global sequence space — seqs
// need only increase, and meta is optional (only shard 0 carries the
// meta record; the others gain it with their first snapshot). The
// second return reports whether a meta was found.
//
// Decoding is staged per segment — pooled whole-segment read, in-place
// line split, parallel frame decode into indexed slots — but the fold
// below consumes the slots serially in file order, so every check
// (snapshot skip, sequence continuity, torn-tail placement) fires at
// the same record, with the same error, as the streaming reference at
// any worker count.
func recoverDir(dir string, loose bool, workers int) (*Replay, bool, error) {
	workers = decodeWorkers(workers)
	r := &Replay{}
	expected := uint64(1)
	haveMeta := false

	if raw, err := os.ReadFile(filepath.Join(dir, snapshotName)); err == nil {
		var snap Snapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			return nil, false, fmt.Errorf("wal: %s: %w", snapshotName, err)
		}
		r.Meta = snap.Meta
		r.Jobs = append(r.Jobs, snap.Jobs...)
		r.LastSeq = snap.LastSeq
		r.LastVirtual = time.Duration(snap.LastVirtualNs)
		r.FromSnapshot = true
		haveMeta = true
		expected = snap.LastSeq + 1
	} else if !os.IsNotExist(err) {
		return nil, false, fmt.Errorf("wal: %w", err)
	}

	names, _, err := listSegments(dir)
	if err != nil {
		return nil, false, err
	}
	if len(names) == 0 && !r.FromSnapshot {
		return nil, false, fmt.Errorf("wal: %s holds no log", dir)
	}
	r.Segments = len(names)
	snapLast := r.LastSeq

	sb := segPool.Get().(*segScratch)
	defer sb.release()
	for i, name := range names {
		last := i == len(names)-1
		if err := sb.load(filepath.Join(dir, name)); err != nil {
			return nil, false, fmt.Errorf("wal: %w", err)
		}
		// An over-long line surfaces only after the records before it
		// fold cleanly, matching where the streaming scanner would fail.
		splitErr := sb.split()
		sb.decode(workers)
		torn := false
		for j := range sb.lines {
			if torn {
				return nil, false, fmt.Errorf("wal: %s: corrupt record followed by more data", name)
			}
			if !sb.oks[j] {
				torn = true
				continue
			}
			rec := &sb.recs[j]
			if rec.Seq <= snapLast {
				continue // already covered by the snapshot
			}
			if loose {
				if rec.Seq < expected {
					return nil, false, fmt.Errorf("wal: %s: sequence went backwards: got %d after %d", name, rec.Seq, expected-1)
				}
			} else if rec.Seq != expected {
				return nil, false, fmt.Errorf("wal: %s: sequence gap: got %d, want %d", name, rec.Seq, expected)
			}
			expected = rec.Seq + 1
			r.LastSeq = rec.Seq
			r.Records++
			if at := time.Duration(rec.AtNs); at > r.LastVirtual {
				r.LastVirtual = at
			}
			switch rec.Kind {
			case KindMeta:
				if rec.Meta != nil && !haveMeta {
					r.Meta = *rec.Meta
					haveMeta = true
				}
			case KindSubmit:
				if rec.Job == nil {
					return nil, false, fmt.Errorf("wal: %s: submit record %d without a job", name, rec.Seq)
				}
				jr := *rec.Job
				jr.Seq = rec.Seq
				r.Jobs = append(r.Jobs, jr)
			default:
				r.Transitions++
			}
		}
		if splitErr != nil {
			return nil, false, splitErr
		}
		if torn {
			if !last {
				return nil, false, fmt.Errorf("wal: %s: corrupt final record in a non-final segment", name)
			}
			r.TornDropped = true
		}
	}
	if !haveMeta && !loose {
		return nil, false, fmt.Errorf("wal: %s holds no meta record", dir)
	}
	return r, haveMeta, nil
}

// decodeFrame parses one "crc payload" line; ok is false for a torn or
// corrupt record (bad frame, checksum mismatch, or unparsable JSON).
// It is the reference decoder: recovery runs decodeFrameFast
// (recover_fast.go), whose accept/reject behavior and decoded Record
// must match this function on every input (FuzzDecodeFrame enforces
// the equivalence).
func decodeFrame(line []byte) (Record, bool) {
	var rec Record
	if len(line) < 10 || line[8] != ' ' {
		return rec, false
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return rec, false
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != uint32(want) {
		return rec, false
	}
	if json.Unmarshal(payload, &rec) != nil {
		return rec, false
	}
	return rec, true
}

// Append adds one record (Seq is assigned here) to the buffered tail and
// returns its sequence number. No syscall unless the append triggers a
// rotation; call Sync before externalizing anything that depends on the
// record being durable.
func (l *Log) Append(r Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.closed {
		return 0, fmt.Errorf("wal: log is closed")
	}
	r.Seq = l.nextSeq
	return l.appendLocked(r)
}

// appendAssigned appends a record whose sequence number the caller
// already assigned — the Sharded router hands out global seqs across
// its shard streams, so one stream's seqs jump.
func (l *Log) appendAssigned(r Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.closed {
		return 0, fmt.Errorf("wal: log is closed")
	}
	return l.appendLocked(r)
}

func (l *Log) appendLocked(r Record) (uint64, error) {
	line, err := journal.MarshalLine(r)
	if err != nil {
		return 0, err // encoding bug, not an I/O failure: not sticky
	}
	frame := make([]byte, 0, len(line)+10)
	frame = fmt.Appendf(frame, "%08x ", crc32.ChecksumIEEE(line))
	frame = append(frame, line...)
	frame = append(frame, '\n')
	if _, err := l.w.Write(frame); err != nil {
		l.err = err
		return 0, err
	}
	l.nextSeq = r.Seq + 1
	l.dirty = true
	l.appends++
	l.segFill += len(frame)
	if r.AtNs > l.lastVirtNs {
		l.lastVirtNs = r.AtNs
	}
	if r.Kind == KindSubmit && r.Job != nil {
		jr := *r.Job
		jr.Seq = r.Seq
		l.submits = append(l.submits, jr)
	}
	if l.segFill >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.err = err
			return 0, err
		}
	}
	return r.Seq, nil
}

// Sync makes every appended record durable. Group commit is the mutex:
// one caller's flush+fsync covers all records appended before it, and
// callers arriving while it runs find a clean log and return without a
// syscall of their own.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.err != nil {
		return l.err
	}
	if !l.dirty {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		l.err = err
		return err
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			l.err = err
			return err
		}
	}
	l.dirty = false
	l.syncs++
	return nil
}

// rotateLocked seals the active segment, starts the next one, writes a
// snapshot covering everything sealed, and deletes the segments the
// snapshot covers.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.f, l.w = nil, nil
	if err := l.openSegmentLocked(); err != nil {
		return err
	}
	if err := l.snapshotLocked(); err != nil {
		return err
	}
	if err := l.removeCoveredLocked(); err != nil {
		return err
	}
	l.rotations++
	return nil
}

// openSegmentLocked creates the segment whose first record will be
// nextSeq and makes its directory entry durable.
func (l *Log) openSegmentLocked() error {
	name := segmentName(l.nextSeq)
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 64*1024)
	l.segStart = l.nextSeq
	l.segFill = 0
	return l.syncDir()
}

// snapshotLocked writes snapshot.json (tmp + rename) covering every
// record before the active segment's first sequence.
func (l *Log) snapshotLocked() error {
	snap := Snapshot{
		Meta:          l.meta,
		LastSeq:       l.segStart - 1,
		LastVirtualNs: l.lastVirtNs,
		Jobs:          l.submits,
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	tmp := filepath.Join(l.dir, snapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return err
	}
	if !l.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapshotName)); err != nil {
		return err
	}
	l.snapshots++
	return l.syncDir()
}

// removeCoveredLocked deletes segments fully covered by the snapshot
// (everything before the active segment).
func (l *Log) removeCoveredLocked() error {
	names, firsts, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	removed := false
	for i, name := range names {
		if firsts[i] >= l.segStart {
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, name)); err != nil {
			return err
		}
		removed = true
	}
	if !removed {
		return nil
	}
	return l.syncDir()
}

// syncDir makes directory-entry changes (segment create, snapshot
// rename, segment removal) durable.
func (l *Log) syncDir() error {
	if l.opts.NoSync {
		return nil
	}
	d, err := os.Open(l.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Close flushes and fsyncs the tail, then closes the active segment.
// The graceful-shutdown path must call this so the last records survive
// the exit. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	syncErr := l.syncLocked()
	var closeErr error
	if l.f != nil {
		closeErr = l.f.Close()
		l.f, l.w = nil, nil
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// LastSeq returns the sequence number of the most recently appended
// record (0 when only nothing or the meta record is pending assignment).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// Meta returns the log's environment record.
func (l *Log) Meta() Meta {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.meta
}

// Stats summarizes the log for /v1/stats.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Dir:         l.dir,
		LastSeq:     l.nextSeq - 1,
		Appends:     l.appends,
		Syncs:       l.syncs,
		Rotations:   l.rotations,
		Snapshots:   l.snapshots,
		Submits:     len(l.submits),
		SegmentFill: l.segFill,
	}
	if l.err != nil {
		st.Err = l.err.Error()
	}
	return st
}
