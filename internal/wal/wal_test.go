package wal

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"proteus/internal/bidbrain"
	"proteus/internal/core"
)

func testMeta() Meta {
	return Meta{
		Seed: 7, EvalDays: 3, TrainDays: 5, BetaSamples: 50, Zones: 1,
		Policy: "fair", TraceSeed: 1, MaxConcurrent: 2, Note: "test",
	}
}

func testJob(id int) JobRecord {
	p := bidbrain.DefaultParams()
	return JobRecord{
		ID:         id,
		Name:       fmt.Sprintf("job-%d", id),
		ArrivalNs:  int64(time.Duration(id) * 10 * time.Minute),
		Priority:   id % 3,
		DeadlineNs: int64(48 * time.Hour),
		Spec: core.JobSpec{
			TargetWork:    p.Phi * 256 * 1.37,
			Params:        p,
			ReliableType:  "c4.xlarge",
			ReliableCount: 3,
			MaxSpotCores:  256,
			ChunkCores:    128,
		},
	}
}

// everyKindRecords covers every record kind the scheduler writes.
func everyKindRecords() []Record {
	j := testJob(0)
	return []Record{
		{Kind: KindSubmit, AtNs: 0, JobID: 0, Job: &j},
		{Kind: KindAdmit, AtNs: int64(time.Minute), JobID: 0},
		{Kind: KindAcquire, AtNs: int64(2 * time.Minute), JobID: -1, Alloc: 1, Cores: 128, Amount: 0.0421, Detail: "c4.2xlarge"},
		{Kind: KindLease, AtNs: int64(2 * time.Minute), JobID: 0, Alloc: 1, Cores: 128},
		{Kind: KindWarning, AtNs: int64(time.Hour), JobID: 0, Alloc: 1, Cores: 128},
		{Kind: KindRelease, AtNs: int64(time.Hour), JobID: 0, Alloc: 1, Cores: 128},
		{Kind: KindEvict, AtNs: int64(time.Hour + 2*time.Minute), JobID: 0, Alloc: 1},
		{Kind: KindRefund, AtNs: int64(time.Hour + 2*time.Minute), JobID: 0, Alloc: 1, Amount: 0.1337},
		{Kind: KindTick, AtNs: int64(2 * time.Hour), JobID: -1},
		{Kind: KindDone, AtNs: int64(3 * time.Hour), JobID: 0, Amount: 351.5},
		{Kind: KindExpire, AtNs: int64(3 * time.Hour), JobID: 1},
	}
}

func TestCreateAppendRecover(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, testMeta(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	recs := everyKindRecords()
	for _, r := range recs {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Meta != testMeta() {
		t.Fatalf("meta = %+v", rep.Meta)
	}
	if rep.LastSeq != uint64(len(recs)+1) { // +1 for the meta record
		t.Fatalf("LastSeq = %d, want %d", rep.LastSeq, len(recs)+1)
	}
	if len(rep.Jobs) != 1 {
		t.Fatalf("jobs = %d, want 1", len(rep.Jobs))
	}
	wantJob := testJob(0)
	wantJob.Seq = 2 // recovery stamps each job with its submit record's seq
	got, _ := json.Marshal(rep.Jobs[0])
	want, _ := json.Marshal(wantJob)
	if string(got) != string(want) {
		t.Fatalf("job round-trip:\n got %s\nwant %s", got, want)
	}
	if rep.Transitions != len(recs)-1 { // all but the submit
		t.Fatalf("Transitions = %d, want %d", rep.Transitions, len(recs)-1)
	}
	if rep.LastVirtual != 3*time.Hour {
		t.Fatalf("LastVirtual = %v", rep.LastVirtual)
	}
	if rep.TornDropped || rep.FromSnapshot {
		t.Fatalf("unexpected flags: %+v", rep)
	}
}

func TestRecordForwardCompat(t *testing.T) {
	// A future writer may add fields; today's reader must ignore them.
	j := testJob(3)
	raw, err := json.Marshal(Record{Seq: 9, Kind: KindSubmit, JobID: 3, Job: &j})
	if err != nil {
		t.Fatal(err)
	}
	withExtra := strings.TrimSuffix(string(raw), "}") + `,"future":"field","shard":7}`
	var rec Record
	if err := json.Unmarshal([]byte(withExtra), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 9 || rec.Kind != KindSubmit || rec.Job == nil || rec.Job.ID != 3 {
		t.Fatalf("rec = %+v", rec)
	}
}

func TestTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, testMeta(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(Record{Kind: KindTick, JobID: -1, AtNs: int64(i) * int64(time.Minute)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, _, err := listSegments(dir)
	if err != nil || len(names) != 1 {
		t.Fatalf("segments = %v (%v)", names, err)
	}
	seg := filepath.Join(dir, names[0])

	// A crash mid-append leaves a prefix of a record on the tail.
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"seq":99,"kind":"tick","trunca`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rep, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TornDropped {
		t.Fatal("torn tail not reported")
	}
	if rep.LastSeq != 4 {
		t.Fatalf("LastSeq = %d, want 4", rep.LastSeq)
	}
}

func TestMidLogCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, testMeta(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(Record{Kind: KindTick, JobID: -1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, _, _ := listSegments(dir)
	seg := filepath.Join(dir, names[0])
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	// Flip a byte inside the second record's payload.
	lines[1] = lines[1][:12] + "X" + lines[1][13:]
	if err := os.WriteFile(seg, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); err == nil {
		t.Fatal("mid-log corruption must abort recovery")
	}
}

func TestRotationSnapshotsAndCompacts(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations.
	l, err := Create(dir, testMeta(), Options{NoSync: true, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	jobs := 20
	for i := 0; i < jobs; i++ {
		j := testJob(i)
		if _, err := l.Append(Record{Kind: KindSubmit, JobID: i, Job: &j}); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append(Record{Kind: KindAdmit, JobID: i, AtNs: int64(i) * int64(time.Minute)}); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Rotations == 0 || st.Snapshots == 0 {
		t.Fatalf("expected rotations+snapshots, got %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Compaction keeps only segments at or after the active one.
	names, _, _ := listSegments(dir)
	if len(names) != 1 {
		t.Fatalf("segments after compaction = %v", names)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("no snapshot: %v", err)
	}

	rep, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FromSnapshot {
		t.Fatal("recovery ignored the snapshot")
	}
	if len(rep.Jobs) != jobs {
		t.Fatalf("jobs = %d, want %d", len(rep.Jobs), jobs)
	}
	for i, j := range rep.Jobs {
		if j.ID != i {
			t.Fatalf("jobs[%d].ID = %d", i, j.ID)
		}
	}
	if rep.LastSeq != uint64(1+2*jobs) {
		t.Fatalf("LastSeq = %d, want %d", rep.LastSeq, 1+2*jobs)
	}
}

func TestOpenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, testMeta(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	j := testJob(0)
	if _, err := l.Append(Record{Kind: KindSubmit, JobID: 0, Job: &j}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rep, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LastSeq != 2 || len(rep.Jobs) != 1 {
		t.Fatalf("replay = %+v", rep)
	}
	j2 := testJob(1)
	seq, err := l2.Append(Record{Kind: KindSubmit, JobID: 1, Job: &j2})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("seq after reopen = %d, want 3", seq)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	rep2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Jobs) != 2 || rep2.Jobs[1].ID != 1 {
		t.Fatalf("jobs after reopen = %+v", rep2.Jobs)
	}
	if rep2.LastSeq != 3 {
		t.Fatalf("LastSeq = %d, want 3", rep2.LastSeq)
	}
}

func TestOpenAfterTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, testMeta(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	j := testJob(0)
	if _, err := l.Append(Record{Kind: KindSubmit, JobID: 0, Job: &j}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, _, _ := listSegments(dir)
	f, _ := os.OpenFile(filepath.Join(dir, names[0]), os.O_APPEND|os.O_WRONLY, 0)
	f.WriteString("0000000")
	f.Close()

	l2, rep, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TornDropped || rep.LastSeq != 2 {
		t.Fatalf("replay = %+v", rep)
	}
	// The torn record is gone for good: the reopened log starts a fresh
	// segment and the old one is compacted away.
	if _, err := l2.Append(Record{Kind: KindTick, JobID: -1}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if rep2, err := Recover(dir); err != nil || rep2.TornDropped {
		t.Fatalf("second recovery: %+v, %v", rep2, err)
	}
}

func TestCreateRefusesExistingLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, testMeta(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := Create(dir, testMeta(), Options{NoSync: true}); err == nil {
		t.Fatal("Create over an existing log must fail")
	}
}

func TestRecoverEmptyDirFails(t *testing.T) {
	if _, err := Recover(t.TempDir()); err == nil {
		t.Fatal("recovering an empty directory must fail")
	}
}

func TestSequenceGapRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, testMeta(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append(Record{Kind: KindTick, JobID: -1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, _, _ := listSegments(dir)
	seg := filepath.Join(dir, names[0])
	raw, _ := os.ReadFile(seg)
	lines := strings.SplitAfter(string(raw), "\n")
	// Drop a whole record from the middle: a valid frame but a seq gap.
	out := strings.Join(append(lines[:2], lines[3:]...), "")
	if err := os.WriteFile(seg, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("want sequence-gap error, got %v", err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, testMeta(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Append(Record{Kind: KindTick, JobID: -1}); err == nil {
		t.Fatal("append after close must fail")
	}
}

// TestFrameChecksum pins the frame format: 8 hex chars, space, payload.
func TestFrameChecksum(t *testing.T) {
	payload := []byte(`{"seq":1,"kind":"tick","job_id":-1}`)
	line := []byte(fmt.Sprintf("%08x %s", crc32.ChecksumIEEE(payload), payload))
	rec, ok := decodeFrame(line)
	if !ok || rec.Kind != KindTick || rec.Seq != 1 {
		t.Fatalf("decodeFrame = %+v, %v", rec, ok)
	}
	line[3] ^= 1
	if _, ok := decodeFrame(line); ok {
		t.Fatal("bad checksum accepted")
	}
}
